"""The Elastic Request Handler (ERH).

The paper's ERH manages a pool of threads that issue ASK / check / SELECT
requests to endpoints in parallel (Figure 3).  Virtual time models that
parallelism deterministically with a *makespan simulator*: every request
submitted through :meth:`ElasticRequestHandler.submit` is scheduled onto

- a **lane** per endpoint — requests addressed to one endpoint
  serialize, exactly like a single SPARQL server answering one query at
  a time; and
- a pool of ``pool_size`` **workers** — total concurrency is bounded by
  the thread pool, like the paper's setup.

A request starts at the latest of (a) the virtual clock when it was
submitted, (b) the moment its endpoint lane frees up, and (c) the moment
a pool worker frees up; it finishes ``cost_seconds`` later.  The clock
only advances when a :class:`ResponseFuture` is resolved, so requests
submitted by *different pipeline stages* before any of them is awaited
share one in-flight window and overlap — the futures-based pipelining
the paper's Figure 3 depicts.  ``execute_batch`` (submit a wave, gather
it immediately) therefore charges the wave's makespan and keeps the
barrier semantics earlier code relied on, while ``submit``/``gather``
let callers keep many waves in flight at once.

Serial execution (``execute``) still charges the full round trip per
request — this is what a FedX-style bound-join loop pays, which is
exactly the effect the paper measures against.

With ``use_threads=True`` submissions additionally run on a real
:class:`~concurrent.futures.ThreadPoolExecutor` (the paper's setup);
futures are *scheduled* in submission order regardless of real
completion order, so results and accounting are bit-identical to the
single-threaded default — endpoints are read-only during queries, and a
per-endpoint lock keeps their evaluator counters coherent.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from concurrent.futures import Future as _ThreadFuture
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..endpoint.metrics import ExecutionContext
from ..sparql.results import ResultSet
from .federation import Federation


@dataclass(frozen=True)
class Request:
    """One SPARQL request addressed to one endpoint."""

    endpoint_id: str
    query_text: str
    kind: str = "SELECT"  # "ASK" | "SELECT"


@dataclass
class Response:
    request: Request
    value: Union[bool, ResultSet]
    cost_seconds: float
    #: endpoint-evaluator compute counters for this request, when the
    #: endpoint reports them (see ``EndpointResponse.compute``)
    compute: Optional[Dict[str, float]] = None


class ResponseFuture:
    """Handle for one in-flight request.

    Created by :meth:`ElasticRequestHandler.submit`; resolving it (via
    :meth:`result` or the handler's ``gather``) schedules every earlier
    submission onto the lane/worker simulator and advances the virtual
    clock to this request's completion time.  ``result`` is idempotent
    and re-raises the request's failure, if any.
    """

    __slots__ = (
        "_handler", "request", "_submit_clock", "_thread_future",
        "_performed", "_submit_error", "_response", "_exception",
        "_finish", "_scheduled",
    )

    def __init__(self, handler: "ElasticRequestHandler", request: Request,
                 submit_clock: float):
        self._handler = handler
        self.request = request
        self._submit_clock = submit_clock
        self._thread_future: Optional[_ThreadFuture] = None
        self._performed: Optional[Tuple[Response, int, int]] = None
        self._submit_error: Optional[BaseException] = None
        self._response: Optional[Response] = None
        self._exception: Optional[BaseException] = None
        self._finish = 0.0
        self._scheduled = False

    def done(self) -> bool:
        """Whether this request has been scheduled (resolved)."""
        return self._scheduled

    def result(self) -> Response:
        return self._handler._resolve(self)


class ElasticRequestHandler:
    """Issues requests against a federation under an execution context."""

    def __init__(
        self,
        federation: Federation,
        context: ExecutionContext,
        pool_size: int = 8,
        use_threads: bool = False,
        max_retries: int = 2,
        retry_backoff_seconds: float = 0.25,
    ):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.federation = federation
        self.context = context
        self.pool_size = pool_size
        self.use_threads = use_threads
        #: transient EndpointUnavailableError retries per request; each
        #: failed attempt charges a round trip plus a virtual backoff
        self.max_retries = max(0, max_retries)
        self.retry_backoff_seconds = retry_backoff_seconds
        self._executor: Optional[ThreadPoolExecutor] = None
        # -- makespan simulator state (all touched only from the
        #    orchestrating thread; workers never schedule) --------------
        #: endpoint id -> absolute virtual time its lane frees up
        self._lane_free: Dict[str, float] = {}
        #: min-heap of worker busy-until times, at most ``pool_size`` deep
        self._worker_free: List[float] = []
        #: submitted-but-unscheduled futures, resolved strictly in order
        self._pending: Deque[ResponseFuture] = deque()
        #: serializes endpoint evaluator access in ``use_threads`` mode
        self._endpoint_locks = {
            endpoint_id: threading.Lock()
            for endpoint_id in federation.endpoint_ids
        }

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ElasticRequestHandler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # The lazily created thread pool must not outlive the query that
        # needed it (``use_threads=True`` would otherwise leak workers).
        self.close()

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.pool_size)
        return self._executor

    # ------------------------------------------------------------------

    def _perform(self, request: Request) -> Tuple[Response, int, int]:
        """Run one request; returns (response, bytes_sent, bytes_received).

        Transient :class:`EndpointUnavailableError` failures are retried
        up to ``max_retries`` times, each failed attempt adding a round
        trip plus a backoff to the request's virtual cost.  No shared
        state is mutated here, so this is safe to call from worker
        threads; accounting happens in the caller.
        """
        from ..endpoint.errors import EndpointUnavailableError

        endpoint = self.federation.endpoint(request.endpoint_id)
        bytes_sent = len(request.query_text)
        penalty = 0.0
        for attempt in range(self.max_retries + 1):
            try:
                response = endpoint.execute(request.query_text)
                break
            except EndpointUnavailableError:
                penalty += self.retry_backoff_seconds
                penalty += self.context.network.request_cost(
                    client=self.context.client_region,
                    endpoint=endpoint.region,
                    bytes_sent=bytes_sent,
                    bytes_received=0,
                    rows_touched=1,
                )
                if attempt == self.max_retries:
                    raise
        cost = penalty + self.context.network.request_cost(
            client=self.context.client_region,
            endpoint=endpoint.region,
            bytes_sent=bytes_sent,
            bytes_received=response.bytes_received,
            rows_touched=response.rows_touched,
        )
        return (
            Response(
                request=request,
                value=response.value,
                cost_seconds=cost,
                compute=getattr(response, "compute", None),
            ),
            bytes_sent,
            response.bytes_received,
        )

    def _perform_locked(self, request: Request) -> Tuple[Response, int, int]:
        """Threaded perform: one request per endpoint at a time, so the
        endpoint evaluator's compute counters stay per-request-exact
        (matching the lane model, which serializes endpoints anyway)."""
        lock = self._endpoint_locks.get(request.endpoint_id)
        if lock is None:  # unknown endpoint: let _perform raise KeyError
            return self._perform(request)
        with lock:
            return self._perform(request)

    def _record(self, response: Response, bytes_sent: int, bytes_received: int):
        self.context.record_request(
            response.request.kind, bytes_sent, bytes_received, response.compute
        )

    # ------------------------------------------------------------------
    # Futures-based scheduling
    # ------------------------------------------------------------------

    def submit(self, request: Request) -> ResponseFuture:
        """Dispatch one request without waiting for it.

        The returned future joins the current in-flight window: its
        start time is the virtual clock *now*, so submissions from
        different pipeline stages overlap until something resolves them.
        """
        metrics = self.context.metrics
        if not self._pending:
            metrics.scheduler_waves += 1
        future = ResponseFuture(self, request, metrics.virtual_seconds)
        if self.use_threads:
            future._thread_future = self._pool().submit(
                self._perform_locked, request
            )
        else:
            try:
                future._performed = self._perform(request)
            except Exception as error:  # re-raised when the future resolves
                future._submit_error = error
        self._pending.append(future)
        if len(self._pending) > metrics.inflight_high_water:
            metrics.inflight_high_water = len(self._pending)
        return future

    def submit_all(self, requests: Sequence[Request]) -> List[ResponseFuture]:
        return [self.submit(request) for request in requests]

    def gather(self, futures: Sequence[ResponseFuture]) -> List[Response]:
        """Resolve futures in order; the clock ends at their makespan."""
        return [future.result() for future in futures]

    def _resolve(self, future: ResponseFuture) -> Response:
        # Scheduling is strictly submission-ordered: resolving a future
        # first schedules everything submitted before it, which keeps
        # threaded and single-threaded accounting identical.
        while not future._scheduled:
            self._schedule_next()
        if future._exception is not None:
            raise future._exception
        clock = self.context.metrics.virtual_seconds
        if future._finish > clock:
            self.context.charge(future._finish - clock)
        return future._response

    def _schedule_next(self) -> None:
        future = self._pending.popleft()
        try:
            if future._thread_future is not None:
                performed = future._thread_future.result()
            elif future._submit_error is not None:
                raise future._submit_error
            else:
                performed = future._performed
        except Exception as error:
            # A failed request holds no lane time (its retries already
            # priced the attempts into nothing observable — the query is
            # about to abort anyway); the error surfaces at result().
            future._exception = error
            future._scheduled = True
            return
        response, bytes_sent, bytes_received = performed
        self._record(response, bytes_sent, bytes_received)
        endpoint_id = response.request.endpoint_id
        start = max(
            future._submit_clock, self._lane_free.get(endpoint_id, 0.0)
        )
        if len(self._worker_free) >= self.pool_size:
            start = max(start, heapq.heappop(self._worker_free))
        finish = start + response.cost_seconds
        heapq.heappush(self._worker_free, finish)
        self._lane_free[endpoint_id] = finish
        lanes = self.context.metrics.lane_busy_seconds
        lanes[endpoint_id] = lanes.get(endpoint_id, 0.0) + response.cost_seconds
        future._response = response
        future._finish = finish
        future._scheduled = True

    # ------------------------------------------------------------------
    # Barrier-style entry points (built on the scheduler)
    # ------------------------------------------------------------------

    def execute(self, request: Request) -> Response:
        """Serial request: the caller waits out the full round trip."""
        return self.submit(request).result()

    def execute_batch(self, requests: Sequence[Request]) -> List[Response]:
        """Concurrent batch with a barrier: submit one wave, await it.

        Charges the wave's makespan — requests to one endpoint
        serialize, requests to different endpoints overlap, and the
        worker pool bounds total concurrency.
        """
        if not requests:
            return []
        return self.gather(self.submit_all(requests))

    # Convenience wrappers -------------------------------------------------

    def ask(self, endpoint_id: str, query_text: str) -> bool:
        response = self.execute(Request(endpoint_id, query_text, kind="ASK"))
        return bool(response.value)

    def ask_all(self, endpoint_ids: Sequence[str], query_text: str) -> Dict[str, bool]:
        requests = [Request(eid, query_text, kind="ASK") for eid in endpoint_ids]
        responses = self.execute_batch(requests)
        return {r.request.endpoint_id: bool(r.value) for r in responses}

    def select(self, endpoint_id: str, query_text: str) -> ResultSet:
        response = self.execute(Request(endpoint_id, query_text, kind="SELECT"))
        return response.value  # type: ignore[return-value]

    def select_all(
        self, endpoint_ids: Sequence[str], query_text: str
    ) -> Dict[str, ResultSet]:
        requests = [Request(eid, query_text, kind="SELECT") for eid in endpoint_ids]
        responses = self.execute_batch(requests)
        return {r.request.endpoint_id: r.value for r in responses}  # type: ignore[misc]
