"""Per-query time budgets and per-endpoint latency tracking.

Public SPARQL endpoints have unbounded tail latency (Schwarte et al.'s
experience report, arXiv:1210.5403): a single straggler stalls a whole
federated query forever.  This module provides the primitives the
deadline-aware execution stack is built from:

- :class:`Deadline` — an absolute virtual-time budget for one query.
  Phases carve **child budgets** out of whatever remains, so analysis
  work (GJV checks, COUNT probes) can be skipped conservatively long
  before the query's own budget runs dry.
- :class:`LatencyTracker` — streaming per-endpoint latency quantiles
  (p50/p95/p99) via the fixed-size P² estimator of Jain & Chlamtác.
  The request handler derives **adaptive per-request timeouts** from a
  warm endpoint's p95×k and uses the p95 as the hedging trigger.
- :class:`AdmissionController` — bounded concurrent-query admission
  with load shedding (:class:`~repro.endpoint.errors.QueryRejectedError`),
  so an overloaded federator rejects work it could not finish in time
  instead of queueing it into everyone else's deadline.

Everything here is virtual-time / arithmetic only — no wall clocks, no
threads beyond a lock — so simulated and threaded runs stay bit-identical.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional

#: fraction of a fresh deadline granted to the analysis phases (source
#: selection, GJV checks, COUNT probes); execution gets the rest
ANALYSIS_FRACTION = 0.35

#: default per-request timeout when a deadline is set but no explicit
#: request timeout was configured: a single request may consume at most
#: this fraction of the whole query budget
DEFAULT_REQUEST_TIMEOUT_FRACTION = 0.25


class Deadline:
    """An absolute virtual-time budget for one query (or phase).

    ``start`` anchors the budget on the virtual clock; ``expires_at`` is
    the absolute instant past which work must degrade.  Budgets are
    advisory to the code that checks them — enforcement happens at the
    request scheduler, which clamps every request's chargeable time to
    the remaining budget (so completion is provably bounded by
    ``deadline + one request timeout``).
    """

    __slots__ = ("budget_seconds", "start", "expires_at", "analysis_fraction")

    def __init__(
        self,
        budget_seconds: float,
        start: float = 0.0,
        analysis_fraction: float = ANALYSIS_FRACTION,
    ):
        if budget_seconds < 0:
            raise ValueError("budget_seconds must be >= 0")
        if not 0.0 < analysis_fraction < 1.0:
            raise ValueError("analysis_fraction must be in (0, 1)")
        self.budget_seconds = budget_seconds
        self.start = start
        self.expires_at = start + budget_seconds
        self.analysis_fraction = analysis_fraction

    def remaining(self, now: float) -> float:
        """Budget left at virtual instant ``now`` (never negative)."""
        return max(0.0, self.expires_at - now)

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def child(self, fraction: float, now: Optional[float] = None) -> "Deadline":
        """A phase budget: ``fraction`` of what remains at ``now``.

        The child is anchored at ``now`` (default: this deadline's own
        start) and can never outlive its parent.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        anchor = self.start if now is None else now
        budget = self.remaining(anchor) * fraction
        return Deadline(
            budget, start=anchor, analysis_fraction=self.analysis_fraction
        )

    def __repr__(self) -> str:
        return (
            f"Deadline({self.budget_seconds:.3f}s from t={self.start:.3f}, "
            f"expires t={self.expires_at:.3f})"
        )


class P2Quantile:
    """Jain & Chlamtác's P² streaming quantile estimator.

    Maintains five markers (min, three interior quantile markers, max)
    in O(1) memory per observation — the classic fixed-size alternative
    to keeping a reservoir.  Until five observations arrive the exact
    small-sample quantile is returned instead.
    """

    __slots__ = ("q", "count", "_samples", "_heights", "_positions",
                 "_desired", "_increments")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = q
        self.count = 0
        #: first five observations, before the markers are initialized
        self._samples: List[float] = []
        self._heights: Optional[List[float]] = None
        self._positions: Optional[List[float]] = None
        self._desired: Optional[List[float]] = None
        self._increments: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        self.count += 1
        if self._heights is None:
            self._samples.append(value)
            if len(self._samples) == 5:
                self._samples.sort()
                q = self.q
                self._heights = list(self._samples)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0
                ]
                self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return
        heights = self._heights
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 3
            for i in range(1, 5):
                if value < heights[i]:
                    cell = i - 1
                    break
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> Optional[float]:
        """Current quantile estimate; None before any observation."""
        if self.count == 0:
            return None
        if self._heights is None:
            ordered = sorted(self._samples)
            index = min(
                len(ordered) - 1,
                max(0, math.ceil(self.q * len(ordered)) - 1),
            )
            return ordered[index]
        return self._heights[2]


class LatencyTracker:
    """Streaming per-endpoint latency quantiles (p50 / p95 / p99).

    The request handler feeds every *charged* request cost in — true
    latency for answered requests, the censored timeout for requests it
    cancelled — so the tracker models what a client actually measures.
    One tracker is shared across an engine's queries: adaptive timeouts
    warm up once, not per query.
    """

    QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self):
        #: endpoint id -> quantile -> estimator
        self._estimators: Dict[str, Dict[float, P2Quantile]] = {}
        self._counts: Dict[str, int] = {}
        # One tracker serves every query the engine runs; concurrent
        # serving-layer executions observe from many threads, and the P²
        # marker updates are multi-step — unlocked, they corrupt.
        self._lock = threading.Lock()

    def observe(self, endpoint_id: str, seconds: float) -> None:
        with self._lock:
            per_endpoint = self._estimators.get(endpoint_id)
            if per_endpoint is None:
                per_endpoint = {q: P2Quantile(q) for q in self.QUANTILES}
                self._estimators[endpoint_id] = per_endpoint
            for estimator in per_endpoint.values():
                estimator.observe(seconds)
            self._counts[endpoint_id] = self._counts.get(endpoint_id, 0) + 1

    def count(self, endpoint_id: str) -> int:
        with self._lock:
            return self._counts.get(endpoint_id, 0)

    def quantile(self, endpoint_id: str, q: float) -> Optional[float]:
        with self._lock:
            per_endpoint = self._estimators.get(endpoint_id)
            if per_endpoint is None or q not in per_endpoint:
                return None
            return per_endpoint[q].value()

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{endpoint: {count, p50, p95, p99}}`` for metrics export."""
        out: Dict[str, Dict[str, float]] = {}
        with self._lock:
            for endpoint_id, per_endpoint in self._estimators.items():
                entry: Dict[str, float] = {
                    "count": float(self._counts.get(endpoint_id, 0))
                }
                for q, estimator in per_endpoint.items():
                    value = estimator.value()
                    if value is not None:
                        entry[f"p{int(q * 100)}"] = value
                out[endpoint_id] = entry
        return out


class AdmissionController:
    """Bounded concurrent-query admission with load shedding.

    An engine (or a pool of engines sharing one controller) admits at
    most ``max_concurrent`` queries at a time; anything beyond that is
    rejected up front — an overloaded federator that queued the work
    instead would blow *every* caller's deadline, not just the shed
    one's.  Thread-safe so engines on different threads can share it.
    """

    def __init__(self, max_concurrent: int = 8):
        if max_concurrent < 0:
            raise ValueError("max_concurrent must be >= 0")
        self.max_concurrent = max_concurrent
        self._active = 0
        self._lock = threading.Lock()
        self.admitted = 0
        self.sheds = 0

    @property
    def active(self) -> int:
        return self._active

    def try_admit(self) -> bool:
        """Admit one query; False (and a shed on the books) if full."""
        with self._lock:
            if self._active >= self.max_concurrent:
                self.sheds += 1
                return False
            self._active += 1
            self.admitted += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._active <= 0:
                raise RuntimeError("release() without a matching admit")
            self._active -= 1
