"""The federation: a registry of endpoints plus the network they live on."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..endpoint.local import LocalEndpoint
from ..endpoint.metrics import ExecutionContext
from ..endpoint.network import LOCAL_CLUSTER, NetworkModel, Region

DEFAULT_CLIENT_REGION = Region("federator")


class Federation:
    """A set of independent SPARQL endpoints reachable over one network."""

    def __init__(
        self,
        endpoints: Sequence[LocalEndpoint],
        network: NetworkModel = LOCAL_CLUSTER,
        client_region: Region = DEFAULT_CLIENT_REGION,
    ):
        if not endpoints:
            raise ValueError("a federation needs at least one endpoint")
        self._endpoints: Dict[str, LocalEndpoint] = {}
        for endpoint in endpoints:
            if endpoint.endpoint_id in self._endpoints:
                raise ValueError(f"duplicate endpoint id {endpoint.endpoint_id!r}")
            self._endpoints[endpoint.endpoint_id] = endpoint
        self.network = network
        self.client_region = client_region

    # -- registry --------------------------------------------------------

    def endpoint(self, endpoint_id: str) -> LocalEndpoint:
        try:
            return self._endpoints[endpoint_id]
        except KeyError:
            raise KeyError(f"unknown endpoint {endpoint_id!r}") from None

    @property
    def endpoint_ids(self) -> List[str]:
        return list(self._endpoints)

    def endpoints(self) -> Iterable[LocalEndpoint]:
        return self._endpoints.values()

    def __len__(self) -> int:
        return len(self._endpoints)

    def __contains__(self, endpoint_id: str) -> bool:
        return endpoint_id in self._endpoints

    # -- execution support -------------------------------------------------

    def make_context(
        self,
        timeout_seconds: float = 3600.0,
        max_intermediate_rows: int = 5_000_000,
        join_threads: int = 4,
        real_time_limit: float = None,
    ) -> ExecutionContext:
        """Fresh virtual clock and budgets for one query execution."""
        self.reset_request_windows()
        return ExecutionContext(
            network=self.network,
            client_region=self.client_region,
            timeout_seconds=timeout_seconds,
            max_intermediate_rows=max_intermediate_rows,
            join_threads=join_threads,
            real_time_limit=real_time_limit,
        )

    def reset_request_windows(self) -> None:
        for endpoint in self._endpoints.values():
            endpoint.reset_request_window()

    def total_triples(self) -> int:
        return sum(e.triple_count() for e in self._endpoints.values())

    def __repr__(self) -> str:
        return f"Federation({len(self)} endpoints, {self.total_triples()} triples)"
