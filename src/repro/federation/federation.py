"""The federation: a registry of endpoints plus the network they live on."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..endpoint.local import LocalEndpoint
from ..endpoint.metrics import ExecutionContext
from ..endpoint.network import LOCAL_CLUSTER, NetworkModel, Region
from .routing import FragmentDescriptor

DEFAULT_CLIENT_REGION = Region("federator")


class Federation:
    """A set of independent SPARQL endpoints reachable over one network."""

    def __init__(
        self,
        endpoints: Sequence[LocalEndpoint],
        network: NetworkModel = LOCAL_CLUSTER,
        client_region: Region = DEFAULT_CLIENT_REGION,
        replicas: Optional[Dict[str, str]] = None,
    ):
        if not endpoints:
            raise ValueError("a federation needs at least one endpoint")
        self._endpoints: Dict[str, LocalEndpoint] = {}
        for endpoint in endpoints:
            if endpoint.endpoint_id in self._endpoints:
                raise ValueError(f"duplicate endpoint id {endpoint.endpoint_id!r}")
            self._endpoints[endpoint.endpoint_id] = endpoint
        self.network = network
        self.client_region = client_region
        #: primary endpoint id -> standby replica id (fault tolerance:
        #: requests reroute here when the primary stays down)
        self._replicas: Dict[str, str] = {}
        #: replica ids excluded from normal source selection
        self._standby: set = set()
        #: declared replicated fragments (routing-mode replication):
        #: fragment name -> descriptor, insertion-ordered
        self._fragments: Dict[str, FragmentDescriptor] = {}
        for primary, replica in (replicas or {}).items():
            self.register_replica(primary, replica)

    # -- registry --------------------------------------------------------

    def endpoint(self, endpoint_id: str) -> LocalEndpoint:
        try:
            return self._endpoints[endpoint_id]
        except KeyError:
            raise KeyError(f"unknown endpoint {endpoint_id!r}") from None

    @property
    def endpoint_ids(self) -> List[str]:
        """Active endpoint ids (standby replicas excluded)."""
        return [
            eid for eid in self._endpoints if eid not in self._standby
        ]

    @property
    def all_endpoint_ids(self) -> List[str]:
        """Every registered endpoint id, standby replicas included."""
        return list(self._endpoints)

    def endpoints(self) -> Iterable[LocalEndpoint]:
        return self._endpoints.values()

    def endpoint_version(self, endpoint_id: str) -> int:
        """The endpoint store's mutation counter (0 when unavailable).

        Every cache that holds per-endpoint answers (ASK, COUNT, check,
        subquery results) folds this into its key, so mutating a store
        invalidates its cached answers the same way the endpoint's plan
        cache invalidates compiled plans.
        """
        endpoint = self._endpoints.get(endpoint_id)
        store = getattr(endpoint, "store", None)
        return getattr(store, "version", 0)

    def cache_identity(self, endpoint_id: str) -> tuple:
        """``(scope, version token)`` for result-cache keying.

        Endpoints declared byte-identical — members of a *full-replica*
        fragment (``predicates=None``) or a primary/standby replica pair
        — share one cache scope: the replica router may legitimately
        send the same subquery to a different copy on the next pass, and
        keying by the answering endpoint's id would then silently miss
        the warm entry (and make ``cache_warm`` cost modeling lie).  The
        version token is the tuple of *all* member store versions, so
        mutating any copy invalidates the shared entries.  Predicate-set
        fragments keep per-endpoint identity: their members are only
        interchangeable for covered patterns, not whole subqueries.
        """
        for fragment in self._fragments.values():
            if fragment.predicates is None and endpoint_id in fragment.endpoints:
                return (
                    f"fragment:{fragment.name}",
                    tuple(self.endpoint_version(e) for e in fragment.endpoints),
                )
        for primary, replica in self._replicas.items():
            if endpoint_id in (primary, replica):
                return (
                    f"replica-pair:{primary}",
                    (
                        self.endpoint_version(primary),
                        self.endpoint_version(replica),
                    ),
                )
        return endpoint_id, self.endpoint_version(endpoint_id)

    # -- replicas ----------------------------------------------------------

    def _require_endpoint(self, endpoint_id: str, role: str) -> None:
        if endpoint_id not in self._endpoints:
            known = ", ".join(sorted(self._endpoints))
            raise KeyError(
                f"unknown {role} endpoint {endpoint_id!r}: "
                f"registered endpoints are {known}"
            )

    def register_replica(
        self, primary_id: str, replica_id: str, standby: bool = True
    ) -> None:
        """Declare ``replica_id`` a full replica of ``primary_id``.

        With ``standby=True`` (the default, the PR-3 behavior) the
        replica is excluded from normal source selection; it only
        receives traffic when the primary fails past its retry budget
        and the engine is running in partial-results mode (the rerouting
        of Montoya et al.'s replicated-fragment federations), or as a
        hedge target.

        With ``standby=False`` both copies stay active and the pair is
        declared as a full-replica fragment: source selection queries
        exactly one copy per query, chosen by the engine's
        :class:`~repro.federation.routing.ReplicaRouter` load/latency
        score — replication as *routing*, not just failover.  The
        replica link is still recorded, so hedging and failure rerouting
        keep working.
        """
        self._require_endpoint(primary_id, "primary")
        self._require_endpoint(replica_id, "replica")
        if primary_id == replica_id:
            raise ValueError("an endpoint cannot be its own replica")
        self._replicas[primary_id] = replica_id
        if standby:
            self._standby.add(replica_id)
        else:
            self.declare_fragment(
                f"replica:{primary_id}", (primary_id, replica_id)
            )

    def replica_of(self, endpoint_id: str) -> Optional[str]:
        return self._replicas.get(endpoint_id)

    # -- replicated fragments ----------------------------------------------

    def declare_fragment(
        self,
        name: str,
        endpoint_ids: Sequence[str],
        predicates: Optional[Iterable] = None,
    ) -> FragmentDescriptor:
        """Declare that ``endpoint_ids`` hold identical copies of a
        fragment: the whole dataset (``predicates=None``) or the triples
        whose predicate is in ``predicates``.  The source selector then
        sends each covered pattern to exactly one member per query.
        """
        ids = tuple(endpoint_ids)
        if len(ids) < 2:
            raise ValueError(
                f"fragment {name!r} needs at least two endpoints to route over"
            )
        if len(set(ids)) != len(ids):
            raise ValueError(f"fragment {name!r} lists a duplicate endpoint")
        for endpoint_id in ids:
            self._require_endpoint(endpoint_id, "fragment")
        if name in self._fragments:
            raise ValueError(f"fragment {name!r} is already declared")
        fragment = FragmentDescriptor(
            name=name,
            endpoints=ids,
            predicates=None if predicates is None else frozenset(predicates),
        )
        self._fragments[name] = fragment
        return fragment

    @property
    def fragments(self) -> List[FragmentDescriptor]:
        return list(self._fragments.values())

    def __len__(self) -> int:
        return len(self._endpoints)

    def __contains__(self, endpoint_id: str) -> bool:
        return endpoint_id in self._endpoints

    # -- execution support -------------------------------------------------

    def make_context(
        self,
        timeout_seconds: float = 3600.0,
        max_intermediate_rows: int = 5_000_000,
        join_threads: int = 4,
        real_time_limit: float = None,
        partial_results: bool = False,
        use_dictionary: bool = True,
        vectorized_joins: bool = True,
        deadline=None,
        reset_windows: bool = True,
    ) -> ExecutionContext:
        """Fresh virtual clock and budgets for one query execution.

        ``deadline`` is an optional
        :class:`~repro.federation.deadline.Deadline` — the query's hard
        virtual-time budget, threaded through the context to the
        request handler and every phase that checks it.

        ``reset_windows=False`` skips the per-query endpoint rate-limit
        window reset: under the serving layer many queries run at once,
        and one query's setup must not clear the windows other in-flight
        queries are being measured against.
        """
        if reset_windows:
            self.reset_request_windows()
        return ExecutionContext(
            network=self.network,
            client_region=self.client_region,
            timeout_seconds=timeout_seconds,
            max_intermediate_rows=max_intermediate_rows,
            join_threads=join_threads,
            real_time_limit=real_time_limit,
            partial_results=partial_results,
            use_dictionary=use_dictionary,
            vectorized_joins=vectorized_joins,
            deadline=deadline,
        )

    def reset_request_windows(self) -> None:
        for endpoint in self._endpoints.values():
            endpoint.reset_request_window()

    def total_triples(self) -> int:
        return sum(e.triple_count() for e in self._endpoints.values())

    def __repr__(self) -> str:
        return f"Federation({len(self)} endpoints, {self.total_triples()} triples)"
