"""Replica-aware, load-balanced routing over declared fragments.

Montoya et al. (*Replicated Fragments*) observed that a federation
aware of which endpoints replicate the same data fragment can prune all
but one copy from source selection — a *routing* decision, not just the
failover `register_replica` provides.  A :class:`FragmentDescriptor`
declares the replication unit: either a full dataset replica
(``predicates=None``) or a predicate-set fragment.  The
:class:`ReplicaRouter` then picks which copy serves each query by a
load/latency score:

``score(ep) = lane backlog(ep) + tracked p50 latency(ep)``

using the request handler's virtual per-endpoint lane occupancy and the
engine's :class:`~repro.federation.deadline.LatencyTracker` (PR 5).
Ties — the common cold-start case — rotate round-robin per fragment, so
a repeated read workload splits across the replicas instead of pinning
one copy while the other idles.

The router lives on the engine (one per engine, like the latency
tracker) so its rotation state persists across queries; within a single
query each fragment routes once and every covered pattern goes to the
same copy, keeping per-pattern source lists equal and therefore leaving
the LADE decomposition itself untouched.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..rdf.term import Variable
from ..rdf.triple import TriplePattern


@dataclass(frozen=True)
class FragmentDescriptor:
    """One replicated fragment: which endpoints hold identical copies.

    ``predicates=None`` declares a full replica (every triple pattern is
    covered); a predicate set restricts coverage to patterns whose
    predicate is ground and in the set.
    """

    name: str
    endpoints: Tuple[str, ...]
    predicates: Optional[FrozenSet] = None

    def covers(self, pattern: TriplePattern) -> bool:
        if self.predicates is None:
            return True
        predicate = pattern.predicate
        if isinstance(predicate, Variable):
            # An unbound predicate may match triples outside the
            # fragment, where the copies are not interchangeable.
            return False
        return predicate in self.predicates


class ReplicaRouter:
    """Chooses which copy of a replicated fragment serves a query."""

    def __init__(self, latency_tracker=None):
        #: per-endpoint latency quantiles (PR 5); None = backlog only
        self.latency_tracker = latency_tracker
        #: fragment name -> round-robin turn among tied candidates
        self._rotation: Dict[str, int] = {}
        #: endpoint id -> routing decisions that landed on it (the
        #: load-split counter the routing tests assert on)
        self.routed: Dict[str, int] = {}
        #: engine-lifetime state, shared by concurrent queries: the
        #: rotation and routed counters are read-modify-write
        self._lock = threading.Lock()

    def score(self, endpoint_id: str, handler=None) -> float:
        """Lower is better: current lane backlog plus median latency."""
        backlog = 0.0
        if handler is not None:
            backlog = handler.lane_backlog(endpoint_id)
        median = None
        if self.latency_tracker is not None:
            median = self.latency_tracker.quantile(endpoint_id, 0.5)
        return backlog + (median or 0.0)

    def choose(
        self, fragment: FragmentDescriptor, candidates: Sequence[str], handler=None
    ) -> str:
        """Pick one of ``candidates`` (all replicas of ``fragment``)."""
        if len(candidates) == 1:
            chosen = candidates[0]
        else:
            scores = {eid: self.score(eid, handler) for eid in candidates}
            best = min(scores.values())
            tied = [eid for eid in candidates if scores[eid] <= best + 1e-12]
            with self._lock:
                turn = self._rotation.get(fragment.name, 0)
                self._rotation[fragment.name] = turn + 1
            chosen = tied[turn % len(tied)]
        with self._lock:
            self.routed[chosen] = self.routed.get(chosen, 0) + 1
        return chosen
