"""ASK-based source selection.

Like FedX and Lusail (both index-free), relevance of an endpoint to a
triple pattern is established by sending ``ASK { pattern }`` to every
endpoint, with answers cached across queries (Section 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..rdf.term import Variable
from ..rdf.triple import TriplePattern
from ..sparql.ast import GroupPattern, Query
from ..sparql.serializer import serialize_query
from .cache import AskCache
from .request_handler import ElasticRequestHandler, Request


def ask_query_text(pattern: TriplePattern) -> str:
    """``ASK { <pattern> }`` as SPARQL text."""
    query = Query(form="ASK", where=GroupPattern(elements=[pattern]))
    return serialize_query(query)


class SourceSelector:
    """Finds the relevant endpoints per triple pattern."""

    def __init__(
        self,
        handler: ElasticRequestHandler,
        cache: Optional[AskCache] = None,
    ):
        self.handler = handler
        self.cache = cache

    def relevant_sources(self, pattern: TriplePattern) -> Tuple[str, ...]:
        """Endpoint ids (federation order) that can answer ``pattern``."""
        endpoint_ids = self.handler.federation.endpoint_ids
        answers: Dict[str, bool] = {}
        missing: List[str] = []
        for endpoint_id in endpoint_ids:
            cached = self.cache.get(endpoint_id, pattern) if self.cache else None
            if cached is None:
                missing.append(endpoint_id)
            else:
                answers[endpoint_id] = cached
                self.handler.context.metrics.cache_hits += 1
        rerouted: List[str] = []
        if missing:
            text = ask_query_text(pattern)
            requests = [Request(eid, text, kind="ASK") for eid in missing]
            for future in self.handler.submit_all(requests):
                endpoint_id = future.request.endpoint_id
                response, error = self.handler.settle(future)
                if error is not None:
                    # Partial mode: a dead endpoint simply drops out of
                    # selection (downstream requests never target it) —
                    # unless a standby replica answers in its place.
                    # The failure is never cached: the endpoint may be
                    # back for the next query.
                    answers[endpoint_id] = False
                    replica = self._ask_replica(endpoint_id, text, pattern)
                    if replica is not None:
                        replica_id, replica_answer = replica
                        answers[replica_id] = replica_answer
                        rerouted.append(replica_id)
                    continue
                answer = bool(response.value)
                answers[endpoint_id] = answer
                if self.cache is not None:
                    self.cache.put(endpoint_id, pattern, answer)
        relevant = [eid for eid in endpoint_ids if answers.get(eid)]
        relevant.extend(eid for eid in rerouted if answers.get(eid))
        return tuple(relevant)

    def _ask_replica(
        self, endpoint_id: str, text: str, pattern: TriplePattern
    ) -> Optional[Tuple[str, bool]]:
        """Re-ask a failed primary's standby replica, if one exists.

        The replica's answer is recorded under *its own* id, so every
        downstream request (checks, probes, SELECTs) naturally targets
        the replica instead of the dead primary.  Returns
        ``(replica_id, answer)`` when the replica answered, else None.
        """
        replica_id = self.handler.federation.replica_of(endpoint_id)
        if replica_id is None:
            return None
        future = self.handler.submit(Request(replica_id, text, kind="ASK"))
        response, error = self.handler.settle(future)
        if error is not None:
            return None
        answer = bool(response.value)
        if self.cache is not None:
            self.cache.put(replica_id, pattern, answer)
        self.handler.context.completeness.note_reroute(endpoint_id, replica_id)
        return replica_id, answer

    def select_all(
        self, patterns: Sequence[TriplePattern]
    ) -> Dict[TriplePattern, Tuple[str, ...]]:
        """Source selection for a whole query's patterns.

        A pattern with an unbound predicate and no bound subject/object is
        relevant to every endpoint without asking (``?s ?p ?o`` matches
        anything non-empty).
        """
        selection: Dict[TriplePattern, Tuple[str, ...]] = {}
        for pattern in patterns:
            if pattern in selection:
                continue
            if all(isinstance(t, Variable) for t in pattern.as_tuple()):
                selection[pattern] = tuple(self.handler.federation.endpoint_ids)
            else:
                selection[pattern] = self.relevant_sources(pattern)
        return selection
