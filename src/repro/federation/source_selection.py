"""ASK-based source selection.

Like FedX and Lusail (both index-free), relevance of an endpoint to a
triple pattern is established by sending ``ASK { pattern }`` to every
endpoint, with answers cached across queries (Section 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..rdf.term import Variable
from ..rdf.triple import TriplePattern
from ..sparql.ast import GroupPattern, Query
from ..sparql.serializer import serialize_query
from .cache import AskCache
from .request_handler import ElasticRequestHandler, Request


def ask_query_text(pattern: TriplePattern) -> str:
    """``ASK { <pattern> }`` as SPARQL text."""
    query = Query(form="ASK", where=GroupPattern(elements=[pattern]))
    return serialize_query(query)


class SourceSelector:
    """Finds the relevant endpoints per triple pattern."""

    def __init__(
        self,
        handler: ElasticRequestHandler,
        cache: Optional[AskCache] = None,
    ):
        self.handler = handler
        self.cache = cache

    def relevant_sources(self, pattern: TriplePattern) -> Tuple[str, ...]:
        """Endpoint ids (federation order) that can answer ``pattern``."""
        endpoint_ids = self.handler.federation.endpoint_ids
        answers: Dict[str, bool] = {}
        missing: List[str] = []
        for endpoint_id in endpoint_ids:
            cached = self.cache.get(endpoint_id, pattern) if self.cache else None
            if cached is None:
                missing.append(endpoint_id)
            else:
                answers[endpoint_id] = cached
                self.handler.context.metrics.cache_hits += 1
        if missing:
            text = ask_query_text(pattern)
            requests = [Request(eid, text, kind="ASK") for eid in missing]
            for response in self.handler.execute_batch(requests):
                endpoint_id = response.request.endpoint_id
                answer = bool(response.value)
                answers[endpoint_id] = answer
                if self.cache is not None:
                    self.cache.put(endpoint_id, pattern, answer)
        return tuple(eid for eid in endpoint_ids if answers.get(eid))

    def select_all(
        self, patterns: Sequence[TriplePattern]
    ) -> Dict[TriplePattern, Tuple[str, ...]]:
        """Source selection for a whole query's patterns.

        A pattern with an unbound predicate and no bound subject/object is
        relevant to every endpoint without asking (``?s ?p ?o`` matches
        anything non-empty).
        """
        selection: Dict[TriplePattern, Tuple[str, ...]] = {}
        for pattern in patterns:
            if pattern in selection:
                continue
            if all(isinstance(t, Variable) for t in pattern.as_tuple()):
                selection[pattern] = tuple(self.handler.federation.endpoint_ids)
            else:
                selection[pattern] = self.relevant_sources(pattern)
        return selection
