"""ASK-based source selection.

Like FedX and Lusail (both index-free), relevance of an endpoint to a
triple pattern is established by sending ``ASK { pattern }`` to every
endpoint, with answers cached across queries (Section 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..rdf.term import Variable
from ..rdf.triple import TriplePattern
from ..sparql.ast import GroupPattern, Query
from ..sparql.serializer import serialize_query
from .cache import AskCache
from .request_handler import ElasticRequestHandler, Request


def ask_query_text(pattern: TriplePattern) -> str:
    """``ASK { <pattern> }`` as SPARQL text."""
    query = Query(form="ASK", where=GroupPattern(elements=[pattern]))
    return serialize_query(query)


class SourceSelector:
    """Finds the relevant endpoints per triple pattern.

    With a ``router``, declared replicated fragments collapse to one
    copy before any ASK goes out: for every fragment covering the
    pattern, the router picks the least-loaded member and the others are
    skipped entirely — neither asked nor eligible for downstream checks,
    probes, or SELECTs.  The choice is memoized per selector (i.e. per
    analyzed group), so every pattern of one query routes to the same
    copy and per-pattern source lists stay equal — the LADE
    decomposition is unaffected by which replica happened to win.
    """

    def __init__(
        self,
        handler: ElasticRequestHandler,
        cache: Optional[AskCache] = None,
        router=None,
    ):
        self.handler = handler
        self.cache = cache
        self.router = router
        #: fragment name -> member chosen for this query
        self._fragment_choice: Dict[str, str] = {}

    def _version(self, endpoint_id: str) -> int:
        return self.handler.federation.endpoint_version(endpoint_id)

    def _route_fragments(self, pattern: TriplePattern) -> List[str]:
        """Active endpoints with replica groups collapsed to one copy."""
        federation = self.handler.federation
        endpoint_ids = list(federation.endpoint_ids)
        if self.router is None:
            return endpoint_ids
        fragments = federation.fragments
        if not fragments:
            return endpoint_ids
        metrics = self.handler.context.metrics
        claimed: set = set()
        for fragment in fragments:
            if not fragment.covers(pattern):
                continue
            members = [
                eid for eid in endpoint_ids
                if eid in fragment.endpoints and eid not in claimed
            ]
            if len(members) < 2:
                continue
            chosen = self._fragment_choice.get(fragment.name)
            if chosen is None or chosen not in members:
                chosen = self.router.choose(fragment, members, self.handler)
                self._fragment_choice[fragment.name] = chosen
                metrics.replica_routes += 1
            pruned = [eid for eid in members if eid != chosen]
            endpoint_ids = [eid for eid in endpoint_ids if eid not in pruned]
            claimed.update(members)
            metrics.fragment_pruned += len(pruned)
            self.handler.context.trace_event(
                "fragment_route",
                fragment=fragment.name,
                pattern=pattern.n3(),
                chosen=chosen,
                pruned=pruned,
            )
        return endpoint_ids

    def relevant_sources(self, pattern: TriplePattern) -> Tuple[str, ...]:
        """Endpoint ids (federation order) that can answer ``pattern``."""
        endpoint_ids = self._route_fragments(pattern)
        answers: Dict[str, bool] = {}
        missing: List[str] = []
        for endpoint_id in endpoint_ids:
            cached = (
                self.cache.get(endpoint_id, pattern, self._version(endpoint_id))
                if self.cache
                else None
            )
            if cached is None:
                missing.append(endpoint_id)
            else:
                answers[endpoint_id] = cached
                self.handler.context.metrics.cache_hits += 1
        rerouted: List[str] = []
        if missing:
            text = ask_query_text(pattern)
            requests = [Request(eid, text, kind="ASK") for eid in missing]
            for future in self.handler.submit_all(requests):
                endpoint_id = future.request.endpoint_id
                response, error = self.handler.settle(future)
                if error is not None:
                    # Partial mode: a dead endpoint simply drops out of
                    # selection (downstream requests never target it) —
                    # unless a standby replica answers in its place.
                    # The failure is never cached: the endpoint may be
                    # back for the next query.
                    answers[endpoint_id] = False
                    replica = self._ask_replica(endpoint_id, text, pattern)
                    if replica is not None:
                        replica_id, replica_answer = replica
                        answers[replica_id] = replica_answer
                        rerouted.append(replica_id)
                    continue
                answer = bool(response.value)
                answers[endpoint_id] = answer
                if self.cache is not None:
                    self.cache.put(
                        endpoint_id, pattern, answer,
                        self._version(endpoint_id),
                    )
        relevant = [eid for eid in endpoint_ids if answers.get(eid)]
        relevant.extend(eid for eid in rerouted if answers.get(eid))
        return tuple(relevant)

    def _ask_replica(
        self, endpoint_id: str, text: str, pattern: TriplePattern
    ) -> Optional[Tuple[str, bool]]:
        """Re-ask a failed primary's standby replica, if one exists.

        The replica's answer is recorded under *its own* id, so every
        downstream request (checks, probes, SELECTs) naturally targets
        the replica instead of the dead primary.  Returns
        ``(replica_id, answer)`` when the replica answered, else None.
        """
        replica_id = self.handler.federation.replica_of(endpoint_id)
        if replica_id is None:
            return None
        future = self.handler.submit(Request(replica_id, text, kind="ASK"))
        response, error = self.handler.settle(future)
        if error is not None:
            return None
        answer = bool(response.value)
        if self.cache is not None:
            self.cache.put(
                replica_id, pattern, answer, self._version(replica_id)
            )
        self.handler.context.completeness.note_reroute(endpoint_id, replica_id)
        return replica_id, answer

    def select_all(
        self, patterns: Sequence[TriplePattern]
    ) -> Dict[TriplePattern, Tuple[str, ...]]:
        """Source selection for a whole query's patterns.

        A pattern with an unbound predicate and no bound subject/object is
        relevant to every endpoint without asking (``?s ?p ?o`` matches
        anything non-empty).
        """
        selection: Dict[TriplePattern, Tuple[str, ...]] = {}
        for pattern in patterns:
            if pattern in selection:
                continue
            if all(isinstance(t, Variable) for t in pattern.as_tuple()):
                # Full-replica fragments still collapse here (their copies
                # are interchangeable for any pattern); predicate-set
                # fragments do not cover an unbound predicate.
                selection[pattern] = tuple(self._route_fragments(pattern))
            else:
                selection[pattern] = self.relevant_sources(pattern)
        return selection
