"""Dictionary encoding of ground terms: the interned-ID layer.

Every hot kernel in the reproduction — the store's SPO/POS/OSP index
walks, the batched BGP executor, and the federator's global hash joins —
ultimately hashes and compares RDF terms.  Terms cache their hashes, but
every probe still pays a Python-level ``__hash__``/``__eq__`` dispatch
per cell.  A :class:`TermDictionary` interns each distinct
:class:`~repro.rdf.term.GroundTerm` once and hands out a dense ``int``
ID, so the kernels run on machine integers (C-level hashing and
equality) and every term's lexical payload is stored exactly once.

IDs are assigned in intern order and never reused or remapped, which
gives two properties the engine relies on:

- **deterministic decode ordering** — ``decode`` is a list index, and
  two stores loaded with the same triple sequence assign the same IDs,
  so ID-native execution enumerates matches in exactly the order the
  term-native code would (independent of ``PYTHONHASHSEED``);
- **append-only stability** — compiled BGP plans may cache encoded
  query constants: interning new terms (or removing triples) never
  invalidates an existing ID.

``terms_interned`` / ``hits`` make the encode boundary observable: the
evaluator and the join layer snapshot them to attribute encode work per
request (see ``EvaluatorStats`` and ``Metrics``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .term import GroundTerm

TermId = int


class TermDictionary:
    """Bidirectional intern table mapping ground terms to dense int IDs."""

    __slots__ = ("_ids", "_terms", "terms_interned", "hits")

    def __init__(self) -> None:
        self._ids: Dict[GroundTerm, TermId] = {}
        self._terms: List[GroundTerm] = []
        #: terms interned so far (== len(self)); monotone counter kept
        #: separate so per-request deltas survive future eviction schemes
        self.terms_interned: int = 0
        #: encode/lookup calls answered from the table
        self.hits: int = 0

    # -- encode ---------------------------------------------------------

    def encode(self, term: GroundTerm) -> TermId:
        """Intern ``term`` (idempotent) and return its dense ID."""
        tid = self._ids.get(term)
        if tid is not None:
            self.hits += 1
            return tid
        tid = len(self._terms)
        self._ids[term] = tid
        self._terms.append(term)
        self.terms_interned += 1
        return tid

    def encode_triple(
        self, s: GroundTerm, p: GroundTerm, o: GroundTerm
    ) -> Tuple[TermId, TermId, TermId]:
        return (self.encode(s), self.encode(p), self.encode(o))

    def lookup(self, term: GroundTerm) -> Optional[TermId]:
        """The ID of an already-interned term, or ``None`` — never interns.

        Read paths (counts, membership, statistics) use this so that
        querying for unknown terms does not grow the table.
        """
        tid = self._ids.get(term)
        if tid is not None:
            self.hits += 1
        return tid

    # -- decode ---------------------------------------------------------

    def decode(self, tid: TermId) -> GroundTerm:
        return self._terms[tid]

    def decode_many(self, ids: Iterable[TermId]) -> List[GroundTerm]:
        terms = self._terms
        return [terms[tid] for tid in ids]

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: GroundTerm) -> bool:
        return term in self._ids

    def __repr__(self) -> str:
        return f"TermDictionary({len(self._terms)} terms)"
