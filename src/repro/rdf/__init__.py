"""RDF data model: terms, triples, namespaces, and N-Triples I/O."""

from .dictionary import TermDictionary, TermId
from .namespace import (
    FOAF,
    Namespace,
    OWL,
    OWL_SAME_AS,
    RDF,
    RDF_TYPE,
    RDFS,
    RDFS_LABEL,
    UB,
    WELL_KNOWN_PREFIXES,
    XSD_NS,
)
from .ntriples import NTriplesError, parse, parse_line, serialize
from .term import (
    BNode,
    GroundTerm,
    IRI,
    Literal,
    PatternTerm,
    Term,
    Variable,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)
from .triple import Triple, TriplePattern

__all__ = [
    "BNode",
    "FOAF",
    "GroundTerm",
    "IRI",
    "Literal",
    "Namespace",
    "NTriplesError",
    "OWL",
    "OWL_SAME_AS",
    "PatternTerm",
    "RDF",
    "RDF_TYPE",
    "RDFS",
    "RDFS_LABEL",
    "Term",
    "TermDictionary",
    "TermId",
    "Triple",
    "TriplePattern",
    "UB",
    "Variable",
    "WELL_KNOWN_PREFIXES",
    "XSD_BOOLEAN",
    "XSD_DOUBLE",
    "XSD_INTEGER",
    "XSD_NS",
    "XSD_STRING",
    "parse",
    "parse_line",
    "serialize",
]
