"""Triples and triple patterns."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .term import GroundTerm, PatternTerm, Term, Variable


class Triple:
    """A ground RDF triple ``(subject, predicate, object)``."""

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: GroundTerm, predicate: GroundTerm, object: GroundTerm):
        for position, term in (("subject", subject), ("predicate", predicate), ("object", object)):
            if isinstance(term, Variable):
                raise ValueError(f"triple {position} may not be a variable: {term!r}")
            if not isinstance(term, Term):
                raise ValueError(f"triple {position} must be a Term, got {term!r}")
        super().__setattr__("subject", subject)
        super().__setattr__("predicate", predicate)
        super().__setattr__("object", object)
        super().__setattr__("_hash", hash((subject, predicate, object)))

    def __setattr__(self, name, value):
        raise AttributeError("Triple is immutable")

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def as_tuple(self) -> Tuple[GroundTerm, GroundTerm, GroundTerm]:
        return (self.subject, self.predicate, self.object)

    def __iter__(self) -> Iterator[GroundTerm]:
        return iter(self.as_tuple())

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Triple)
            and self.subject == other.subject
            and self.predicate == other.predicate
            and self.object == other.object
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"


class TriplePattern:
    """A triple pattern: each position is a ground term or a variable."""

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: PatternTerm, predicate: PatternTerm, object: PatternTerm):
        for position, term in (("subject", subject), ("predicate", predicate), ("object", object)):
            if not isinstance(term, Term):
                raise ValueError(f"pattern {position} must be a Term, got {term!r}")
        super().__setattr__("subject", subject)
        super().__setattr__("predicate", predicate)
        super().__setattr__("object", object)
        super().__setattr__("_hash", hash((subject, predicate, object)))

    def __setattr__(self, name, value):
        raise AttributeError("TriplePattern is immutable")

    def variables(self) -> frozenset:
        """All variables appearing in this pattern."""
        return frozenset(
            term for term in (self.subject, self.predicate, self.object)
            if isinstance(term, Variable)
        )

    def matches(self, triple: Triple) -> Optional[dict]:
        """Match a ground triple; return a binding dict or ``None``.

        A binding maps each variable in the pattern to the corresponding
        term in the triple; a variable used twice must bind consistently.
        """
        binding: dict = {}
        for pattern_term, triple_term in (
            (self.subject, triple.subject),
            (self.predicate, triple.predicate),
            (self.object, triple.object),
        ):
            if isinstance(pattern_term, Variable):
                bound = binding.get(pattern_term)
                if bound is None:
                    binding[pattern_term] = triple_term
                elif bound != triple_term:
                    return None
            elif pattern_term != triple_term:
                return None
        return binding

    def substitute(self, binding: dict) -> "TriplePattern":
        """Replace variables that appear in ``binding`` with their values."""

        def resolve(term: PatternTerm) -> PatternTerm:
            if isinstance(term, Variable):
                return binding.get(term, term)
            return term

        return TriplePattern(
            resolve(self.subject), resolve(self.predicate), resolve(self.object)
        )

    def is_ground(self) -> bool:
        return not self.variables()

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def as_tuple(self) -> Tuple[PatternTerm, PatternTerm, PatternTerm]:
        return (self.subject, self.predicate, self.object)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TriplePattern)
            and self.subject == other.subject
            and self.predicate == other.predicate
            and self.object == other.object
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"TriplePattern({self.subject!r}, {self.predicate!r}, {self.object!r})"
