"""RDF term model: IRIs, literals, blank nodes, and query variables.

Terms are immutable, hashable, and totally ordered so they can be used as
dictionary keys in the store indexes and sorted deterministically in query
results.  The ordering is (term kind, lexical fields) and carries no RDF
semantics beyond determinism.
"""

from __future__ import annotations

from typing import Optional, Union

# Sort keys for cross-kind ordering.  Blank nodes < IRIs < literals <
# variables; within a kind, lexical order applies.
_KIND_BNODE = 0
_KIND_IRI = 1
_KIND_LITERAL = 2
_KIND_VARIABLE = 3

#: Datatype IRIs used for typed-literal coercion in SPARQL expressions.
XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_INTEGER = XSD + "integer"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_BOOLEAN = XSD + "boolean"
XSD_STRING = XSD + "string"

_NUMERIC_DATATYPES = frozenset(
    {
        XSD_INTEGER,
        XSD_DECIMAL,
        XSD_DOUBLE,
        XSD + "float",
        XSD + "int",
        XSD + "long",
        XSD + "short",
        XSD + "byte",
        XSD + "nonNegativeInteger",
        XSD + "positiveInteger",
        XSD + "unsignedInt",
    }
)


class Term:
    """Base class for all RDF terms and query variables."""

    __slots__ = ()

    _kind: int = -1

    def n3(self) -> str:
        """Render this term in N-Triples / SPARQL surface syntax."""
        raise NotImplementedError

    def sort_key(self) -> tuple:
        raise NotImplementedError

    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


class IRI(Term):
    """An absolute IRI reference, e.g. ``<http://example.org/x>``."""

    __slots__ = ("value", "_hash")

    _kind = _KIND_IRI

    def __init__(self, value: str):
        if not isinstance(value, str) or not value:
            raise ValueError(f"IRI requires a non-empty string, got {value!r}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((_KIND_IRI, value)))

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("IRI is immutable")

    def n3(self) -> str:
        return f"<{self.value}>"

    def sort_key(self) -> tuple:
        return (_KIND_IRI, self.value)

    @property
    def authority(self) -> str:
        """The scheme+authority prefix, used by HiBISCuS-style summaries.

        For ``http://drugbank.org/drugs/DB001`` this is
        ``http://drugbank.org``.  Falls back to the full IRI when there is
        no ``//`` component (e.g. ``urn:`` IRIs).
        """
        value = self.value
        scheme_end = value.find("://")
        if scheme_end < 0:
            colon = value.find(":")
            return value if colon < 0 else value[:colon]
        path_start = value.find("/", scheme_end + 3)
        return value if path_start < 0 else value[:path_start]

    def __eq__(self, other) -> bool:
        return isinstance(other, IRI) and self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"


class BNode(Term):
    """A blank node with a local label."""

    __slots__ = ("label", "_hash")

    _kind = _KIND_BNODE

    def __init__(self, label: str):
        if not isinstance(label, str) or not label:
            raise ValueError(f"BNode requires a non-empty label, got {label!r}")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash((_KIND_BNODE, label)))

    def __setattr__(self, name, value):
        raise AttributeError("BNode is immutable")

    def n3(self) -> str:
        return f"_:{self.label}"

    def sort_key(self) -> tuple:
        return (_KIND_BNODE, self.label)

    def __eq__(self, other) -> bool:
        return isinstance(other, BNode) and self.label == other.label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BNode({self.label!r})"


class Literal(Term):
    """An RDF literal: lexical form plus optional datatype or language tag."""

    __slots__ = ("lexical", "datatype", "language", "_hash")

    _kind = _KIND_LITERAL

    def __init__(
        self,
        lexical: str,
        datatype: Optional[str] = None,
        language: Optional[str] = None,
    ):
        if not isinstance(lexical, str):
            raise ValueError(f"Literal lexical form must be str, got {lexical!r}")
        if datatype is not None and language is not None:
            raise ValueError("a literal cannot have both a datatype and a language")
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)
        object.__setattr__(
            self, "_hash", hash((_KIND_LITERAL, lexical, datatype, language))
        )

    def __setattr__(self, name, value):
        raise AttributeError("Literal is immutable")

    @classmethod
    def integer(cls, value: int) -> "Literal":
        return cls(str(int(value)), datatype=XSD_INTEGER)

    @classmethod
    def decimal(cls, value: float) -> "Literal":
        return cls(repr(float(value)), datatype=XSD_DOUBLE)

    @classmethod
    def boolean(cls, value: bool) -> "Literal":
        return cls("true" if value else "false", datatype=XSD_BOOLEAN)

    @property
    def is_numeric(self) -> bool:
        if self.datatype in _NUMERIC_DATATYPES:
            return True
        if self.datatype is None and self.language is None:
            try:
                float(self.lexical)
                return True
            except ValueError:
                return False
        return False

    def numeric_value(self) -> Union[int, float]:
        """Return the numeric value; raises ``ValueError`` for non-numerics."""
        text = self.lexical
        if self.datatype == XSD_INTEGER:
            return int(text)
        try:
            return int(text)
        except ValueError:
            return float(text)

    def boolean_value(self) -> bool:
        if self.datatype == XSD_BOOLEAN or self.datatype is None:
            if self.lexical in ("true", "1"):
                return True
            if self.lexical in ("false", "0"):
                return False
        raise ValueError(f"not a boolean literal: {self!r}")

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.language is not None:
            return f'"{escaped}"@{self.language}'
        if self.datatype is not None and self.datatype != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    def sort_key(self) -> tuple:
        return (
            _KIND_LITERAL,
            self.lexical,
            self.datatype or "",
            self.language or "",
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        extra = ""
        if self.datatype:
            extra = f", datatype={self.datatype!r}"
        elif self.language:
            extra = f", language={self.language!r}"
        return f"Literal({self.lexical!r}{extra})"


class Variable(Term):
    """A SPARQL query variable, e.g. ``?name``."""

    __slots__ = ("name", "_hash")

    _kind = _KIND_VARIABLE

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError(f"Variable requires a non-empty name, got {name!r}")
        if name.startswith("?") or name.startswith("$"):
            name = name[1:]
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash((_KIND_VARIABLE, name)))

    def __setattr__(self, name, value):
        raise AttributeError("Variable is immutable")

    def n3(self) -> str:
        return f"?{self.name}"

    def sort_key(self) -> tuple:
        return (_KIND_VARIABLE, self.name)

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


#: Concrete (ground) term — anything that can appear in stored data.
GroundTerm = Union[IRI, BNode, Literal]
#: Anything that can appear in a triple pattern.
PatternTerm = Union[IRI, BNode, Literal, Variable]
