"""Namespace helpers and well-known vocabularies."""

from __future__ import annotations

from .term import IRI


class Namespace:
    """IRI factory for a common prefix: ``UB = Namespace(...); UB.advisor``."""

    def __init__(self, base: str):
        if not base:
            raise ValueError("namespace base must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, local: str) -> IRI:
        return IRI(self._base + local)

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return self.term(local)

    def __getitem__(self, local: str) -> IRI:
        return self.term(local)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def local_name(self, iri: IRI) -> str:
        """The part of ``iri`` after this namespace's base."""
        if iri not in self:
            raise ValueError(f"{iri!r} is not in namespace {self._base}")
        return iri.value[len(self._base):]

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD_NS = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")

#: LUBM university ontology namespace (as used in the paper's examples).
UB = Namespace("http://swat.cse.lehigh.edu/onto/univ-bench.owl#")

RDF_TYPE = RDF.type
OWL_SAME_AS = OWL.sameAs
RDFS_LABEL = RDFS.label
RDFS_SEE_ALSO = RDFS.seeAlso

#: Default prefix table used by the SPARQL parser when queries do not
#: declare their own prefixes.  Query text in the benchmarks uses these.
WELL_KNOWN_PREFIXES = {
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "owl": OWL.base,
    "xsd": XSD_NS.base,
    "foaf": FOAF.base,
    "ub": UB.base,
}
