"""A small, strict N-Triples parser and serializer.

Supports the line-based N-Triples syntax: IRIs in angle brackets, blank
nodes, plain / language-tagged / datatyped literals with the standard
string escapes.  Used for dataset round-tripping and for sizing messages
in the network simulator.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from .term import BNode, GroundTerm, IRI, Literal
from .triple import Triple


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input."""


_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
}


class _LineParser:
    """Cursor over one N-Triples line."""

    def __init__(self, line: str, line_number: int):
        self.text = line
        self.pos = 0
        self.line_number = line_number

    def error(self, message: str) -> NTriplesError:
        return NTriplesError(
            f"line {self.line_number}, column {self.pos + 1}: {message}"
        )

    def skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        if self.at_end():
            raise self.error("unexpected end of line")
        return self.text[self.pos]

    def expect(self, char: str) -> None:
        if self.at_end() or self.text[self.pos] != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def parse_iri(self) -> IRI:
        self.expect("<")
        end = self.text.find(">", self.pos)
        if end < 0:
            raise self.error("unterminated IRI")
        value = self.text[self.pos:end]
        self.pos = end + 1
        if not value:
            raise self.error("empty IRI")
        return IRI(value)

    def parse_bnode(self) -> BNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "-_."
        ):
            self.pos += 1
        label = self.text[start:self.pos]
        if not label:
            raise self.error("empty blank node label")
        return BNode(label)

    def parse_string_body(self) -> str:
        self.expect('"')
        parts: List[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated string literal")
            char = self.text[self.pos]
            self.pos += 1
            if char == '"':
                return "".join(parts)
            if char == "\\":
                if self.at_end():
                    raise self.error("dangling escape")
                escape = self.text[self.pos]
                self.pos += 1
                if escape in _ESCAPES:
                    parts.append(_ESCAPES[escape])
                elif escape == "u":
                    hex_digits = self.text[self.pos:self.pos + 4]
                    if len(hex_digits) != 4:
                        raise self.error("bad \\u escape")
                    parts.append(chr(int(hex_digits, 16)))
                    self.pos += 4
                elif escape == "U":
                    hex_digits = self.text[self.pos:self.pos + 8]
                    if len(hex_digits) != 8:
                        raise self.error("bad \\U escape")
                    parts.append(chr(int(hex_digits, 16)))
                    self.pos += 8
                else:
                    raise self.error(f"unknown escape \\{escape}")
            else:
                parts.append(char)

    def parse_literal(self) -> Literal:
        body = self.parse_string_body()
        if not self.at_end() and self.text[self.pos] == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] == "-"
            ):
                self.pos += 1
            tag = self.text[start:self.pos]
            if not tag:
                raise self.error("empty language tag")
            return Literal(body, language=tag)
        if self.text[self.pos:self.pos + 2] == "^^":
            self.pos += 2
            datatype = self.parse_iri()
            return Literal(body, datatype=datatype.value)
        return Literal(body)

    def parse_term(self, allow_literal: bool) -> GroundTerm:
        self.skip_whitespace()
        char = self.peek()
        if char == "<":
            return self.parse_iri()
        if char == "_":
            return self.parse_bnode()
        if char == '"':
            if not allow_literal:
                raise self.error("literal not allowed in this position")
            return self.parse_literal()
        raise self.error(f"unexpected character {char!r}")


def parse_line(line: str, line_number: int = 1) -> Triple:
    """Parse a single N-Triples statement line."""
    parser = _LineParser(line, line_number)
    subject = parser.parse_term(allow_literal=False)
    predicate = parser.parse_term(allow_literal=False)
    if not isinstance(predicate, IRI):
        raise parser.error("predicate must be an IRI")
    obj = parser.parse_term(allow_literal=True)
    parser.skip_whitespace()
    parser.expect(".")
    parser.skip_whitespace()
    if not parser.at_end():
        raise parser.error("trailing content after '.'")
    return Triple(subject, predicate, obj)


def parse(text: str) -> Iterator[Triple]:
    """Parse an N-Triples document, yielding triples.

    Blank lines and ``#`` comment lines are skipped.
    """
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_line(line, line_number)


def serialize(triples: Iterable[Triple]) -> str:
    """Serialize triples as an N-Triples document."""
    return "".join(triple.n3() + "\n" for triple in triples)
