"""Property-based correctness oracle for federated execution.

The semantics of federated SPARQL over a decentralized graph is: the
answer must equal evaluating the query over the *union* of all endpoint
data (that is exactly what Section 1's Q_a example demands).  Hypothesis
generates small adversarial federations — tiny term pools force values
to collide across endpoints — and random chain queries; every engine's
answer is compared against a centralized evaluation of the merged store.

Lusail runs with ``strict_checks=True`` here: the paper's one-direction
Figure-5 check is intentionally reproduced as the default, and DESIGN.md
documents the (paper-inherited) corner it misses; the strict mode closes
it and must therefore be exactly complete.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FedXEngine
from repro.core import LusailEngine
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import Federation
from repro.rdf import IRI, Triple
from repro.sparql import Evaluator, parse_query
from repro.store import TripleStore

_ENTITIES = [IRI(f"http://x/e{i}") for i in range(6)]
_PREDICATES = [IRI(f"http://x/p{i}") for i in range(3)]

_triples = st.builds(
    Triple,
    st.sampled_from(_ENTITIES),
    st.sampled_from(_PREDICATES),
    st.sampled_from(_ENTITIES),
)

_endpoint_data = st.lists(_triples, min_size=1, max_size=12)

_federation_data = st.lists(_endpoint_data, min_size=2, max_size=3)

# chain queries: ?v0 p ?v1 . ?v1 q ?v2 . [?v2 r ?v3]
_chain_predicates = st.lists(
    st.sampled_from(_PREDICATES), min_size=1, max_size=3
)


def _chain_query(predicates) -> str:
    patterns = []
    for index, predicate in enumerate(predicates):
        patterns.append(f"?v{index} {predicate.n3()} ?v{index + 1} .")
    variables = " ".join(f"?v{i}" for i in range(len(predicates) + 1))
    return f"SELECT {variables} WHERE {{ {' '.join(patterns)} }}"


def _star_query(predicates) -> str:
    patterns = []
    for index, predicate in enumerate(predicates):
        patterns.append(f"?hub {predicate.n3()} ?v{index} .")
    variables = "?hub " + " ".join(f"?v{i}" for i in range(len(predicates)))
    return f"SELECT {variables} WHERE {{ {' '.join(patterns)} }}"


def _centralized_answer(endpoint_data, query_text):
    merged = TripleStore()
    for triples in endpoint_data:
        merged.add_all(triples)
    result = Evaluator(merged).select(parse_query(query_text))
    return {tuple(row) for row in result.distinct().rows}


def _federated_answer(engine_factory, endpoint_data, query_text):
    endpoints = [
        LocalEndpoint.from_triples(f"ep{i}", triples)
        for i, triples in enumerate(endpoint_data)
    ]
    federation = Federation(endpoints, network=LOCAL_CLUSTER)
    outcome = engine_factory(federation).execute(query_text)
    assert outcome.status == "OK", outcome.error
    return {tuple(row) for row in outcome.result.rows}


@settings(max_examples=60, deadline=None)
@given(_federation_data, _chain_predicates)
def test_lusail_strict_matches_centralized_chain(endpoint_data, predicates):
    query_text = _chain_query(predicates)
    expected = _centralized_answer(endpoint_data, query_text)
    actual = _federated_answer(
        lambda fed: LusailEngine(fed, strict_checks=True),
        endpoint_data,
        query_text,
    )
    assert actual == expected


@settings(max_examples=40, deadline=None)
@given(_federation_data, _chain_predicates)
def test_lusail_strict_matches_centralized_star(endpoint_data, predicates):
    query_text = _star_query(predicates)
    expected = _centralized_answer(endpoint_data, query_text)
    actual = _federated_answer(
        lambda fed: LusailEngine(fed, strict_checks=True),
        endpoint_data,
        query_text,
    )
    assert actual == expected


@settings(max_examples=40, deadline=None)
@given(_federation_data, _chain_predicates)
def test_fedx_matches_centralized_chain(endpoint_data, predicates):
    query_text = _chain_query(predicates)
    expected = _centralized_answer(endpoint_data, query_text)
    actual = _federated_answer(FedXEngine, endpoint_data, query_text)
    assert actual == expected


@settings(max_examples=30, deadline=None)
@given(_federation_data, _chain_predicates)
def test_default_lusail_is_sound_chain(endpoint_data, predicates):
    """The default (paper-faithful) checks may at worst *miss* rows in
    the adversarial corner DESIGN.md documents — they must never invent
    rows."""
    query_text = _chain_query(predicates)
    expected = _centralized_answer(endpoint_data, query_text)
    actual = _federated_answer(LusailEngine, endpoint_data, query_text)
    assert actual <= expected
