"""Fault-tolerant federation: injection, breaker, honest accounting,
partial results, and replica rerouting.

The invariants under test:

- fault injection is deterministic and structured (outage windows,
  latency spikes, rate limits), not just i.i.d. coin flips;
- the circuit breaker opens after N consecutive exhausted failures,
  fast-fails while open, lets one half-open probe through after the
  (virtual-time) cooldown, and closes on a successful probe;
- failures are never free: exhausted retries charge their round trips
  and backoffs to the virtual clock, the endpoint lane, and the
  ``requests_failed`` / ``retries`` counters — including requests
  drained by ``close()``;
- ``partial_results=True`` degrades instead of aborting: the answer is
  a subset of the fault-free answer, the status is ``PARTIAL``, and the
  completeness report names what was lost;
- a registered standby replica recovers the full answer;
- threaded execution stays bit-identical to the simulator under
  injected transient faults.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from .conftest import (
    EP1_TRIPLES,
    EP2_TRIPLES,
    QA_EXPECTED,
    QUERY_QA,
    build_paper_federation,
    result_values,
)
from repro.core import LusailEngine
from repro.core.trace import QueryTrace, render_trace
from repro.endpoint import (
    CircuitBreakerOpenError,
    EndpointRateLimitError,
    EndpointUnavailableError,
    FaultProfile,
    LOCAL_CLUSTER,
    LocalEndpoint,
    OutageWindow,
)
from repro.federation import Federation
from repro.federation.request_handler import ElasticRequestHandler, Request
from repro.rdf import IRI, Triple
from repro.rdf import parse as nt_parse

ASK_TEXT = (
    'ASK { ?s <http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor> ?o . }'
)


def _faulty_paper_federation(ep1_profile=None, ep2_profile=None, extra=()):
    endpoints = [
        LocalEndpoint.from_triples(
            "ep1", nt_parse(EP1_TRIPLES), faults=ep1_profile
        ),
        LocalEndpoint.from_triples(
            "ep2", nt_parse(EP2_TRIPLES), faults=ep2_profile
        ),
    ]
    endpoints.extend(extra)
    return Federation(endpoints, network=LOCAL_CLUSTER)


def _handler(federation, **kwargs):
    context = federation.make_context(
        partial_results=kwargs.pop("partial_results", False)
    )
    return ElasticRequestHandler(federation, context, **kwargs), context


# ----------------------------------------------------------------------
# Fault injection on LocalEndpoint
# ----------------------------------------------------------------------


class TestFaultInjection:
    def test_outage_window_covers(self):
        window = OutageWindow(start=2, end=5)
        assert [window.covers(i) for i in range(7)] == [
            False, False, True, True, True, False, False,
        ]
        forever = OutageWindow(start=3)
        assert not forever.covers(2)
        assert forever.covers(10_000)

    def test_always_down_profile(self):
        endpoint = LocalEndpoint.from_triples(
            "down", nt_parse(EP1_TRIPLES), faults=FaultProfile.always_down()
        )
        for _ in range(5):
            with pytest.raises(EndpointUnavailableError):
                endpoint.execute(ASK_TEXT)

    def test_outage_window_spans_ordinals(self):
        profile = FaultProfile(
            outage_windows=(OutageWindow(start=2, end=4),)
        )
        endpoint = LocalEndpoint.from_triples(
            "blinky", nt_parse(EP1_TRIPLES), faults=profile
        )
        outcomes = []
        for _ in range(6):
            try:
                endpoint.execute(ASK_TEXT)
                outcomes.append("ok")
            except EndpointUnavailableError:
                outcomes.append("down")
        assert outcomes == ["ok", "ok", "down", "down", "ok", "ok"]

    def test_latency_spike_charges_penalty(self):
        profile = FaultProfile(
            latency_spike_rate=0.5, latency_spike_seconds=2.0, seed=7
        )
        endpoint = LocalEndpoint.from_triples(
            "slow", nt_parse(EP1_TRIPLES), faults=profile
        )
        penalties = [
            endpoint.execute(ASK_TEXT).latency_penalty_seconds
            for _ in range(30)
        ]
        assert 0.0 in penalties and 2.0 in penalties

    def test_rate_limit_profile(self):
        profile = FaultProfile(requests_per_query=3)
        endpoint = LocalEndpoint.from_triples(
            "polite", nt_parse(EP1_TRIPLES), faults=profile
        )
        for _ in range(3):
            endpoint.execute(ASK_TEXT)
        with pytest.raises(EndpointRateLimitError):
            endpoint.execute(ASK_TEXT)
        endpoint.reset_request_window()
        endpoint.execute(ASK_TEXT)

    def test_failure_draws_deterministic_across_runs(self):
        def sequence():
            endpoint = LocalEndpoint.from_triples(
                "flaky", nt_parse(EP1_TRIPLES),
                faults=FaultProfile(failure_rate=0.5, seed=11),
            )
            outcomes = []
            for _ in range(20):
                try:
                    endpoint.execute(ASK_TEXT)
                    outcomes.append(True)
                except EndpointUnavailableError:
                    outcomes.append(False)
            return outcomes

        first, second = sequence(), sequence()
        assert first == second
        assert True in first and False in first

    def test_set_faults_heals(self):
        endpoint = LocalEndpoint.from_triples(
            "healing", nt_parse(EP1_TRIPLES),
            faults=FaultProfile.always_down(),
        )
        with pytest.raises(EndpointUnavailableError):
            endpoint.execute(ASK_TEXT)
        endpoint.set_faults(None)
        assert endpoint.execute(ASK_TEXT) is not None


# ----------------------------------------------------------------------
# Honest failure accounting in the request handler
# ----------------------------------------------------------------------


class TestFailureAccounting:
    def test_exhausted_retries_charge_clock_lane_and_counters(self):
        federation = _faulty_paper_federation(
            ep2_profile=FaultProfile.always_down()
        )
        handler, context = _handler(federation, max_retries=2)
        with handler:
            future = handler.submit(Request("ep2", ASK_TEXT, kind="ASK"))
            with pytest.raises(EndpointUnavailableError):
                future.result()
        metrics = context.metrics
        assert metrics.requests_failed == 3  # max_retries + 1 attempts
        assert metrics.retries == 2
        assert metrics.virtual_seconds > 0.0
        assert metrics.lane_busy_seconds.get("ep2", 0.0) > 0.0
        assert metrics.bytes_sent == 3 * len(ASK_TEXT)
        # Settled before close(): nothing was abandoned mid-flight.
        assert handler.cancelled == 0
        assert metrics.requests_cancelled == 0

    def test_backoff_is_exponential(self):
        def exhausted_cost(max_retries):
            federation = _faulty_paper_federation(
                ep2_profile=FaultProfile.always_down()
            )
            handler, context = _handler(federation, max_retries=max_retries)
            with handler:
                future = handler.submit(Request("ep2", ASK_TEXT, kind="ASK"))
                with pytest.raises(EndpointUnavailableError):
                    future.result()
            return context.metrics.virtual_seconds

        one, two, three = (exhausted_cost(n) for n in (1, 2, 3))
        # Each extra attempt doubles the previous backoff, so cost
        # deltas must grow strictly.
        assert (three - two) > (two - one) > 0

    def test_retried_success_counts_failed_attempts(self):
        # Rate 0.5 over 40 distinct ASK texts: some requests fail first
        # and succeed on retry — those must show up in the counters even
        # though every answer arrives.
        federation = _faulty_paper_federation(
            ep1_profile=FaultProfile(failure_rate=0.3, seed=3)
        )
        handler, context = _handler(federation, max_retries=6)
        with handler:
            for index in range(40):
                text = (
                    f'ASK {{ <http://mit.edu/Lee> '
                    f'<http://x/p{index}> ?o . }}'
                )
                handler.execute(Request("ep1", text, kind="ASK"))
        metrics = context.metrics
        assert metrics.requests == 40
        assert metrics.requests_failed > 0
        assert metrics.retries == metrics.requests_failed

    def test_close_drains_and_accounts_pending_failures(self):
        federation = _faulty_paper_federation(
            ep2_profile=FaultProfile.always_down()
        )
        handler, context = _handler(federation, max_retries=1)
        handler.submit(Request("ep2", ASK_TEXT, kind="ASK"))
        handler.submit(Request("ep1", ASK_TEXT, kind="ASK"))
        # Never resolved — close() must still account for both, and
        # swallow the ep2 failure instead of raising.
        handler.close()
        metrics = context.metrics
        assert metrics.requests == 1  # the ep1 success
        assert metrics.requests_failed == 2  # both ep2 attempts
        assert not handler._pending
        # Both futures were abandoned mid-flight: the drain must count
        # them as cancelled, once, and close() must stay idempotent.
        assert handler.cancelled == 2
        assert metrics.requests_cancelled == 2
        handler.close()
        assert handler.cancelled == 2
        assert metrics.requests_cancelled == 2

    def test_rate_limit_error_is_charged(self):
        federation = _faulty_paper_federation(
            ep2_profile=FaultProfile(requests_per_query=1)
        )
        handler, context = _handler(federation)
        with handler:
            handler.execute(Request("ep2", ASK_TEXT, kind="ASK"))
            future = handler.submit(Request("ep2", ASK_TEXT, kind="ASK"))
            with pytest.raises(EndpointRateLimitError):
                future.result()
        assert context.metrics.requests_failed == 1
        assert context.metrics.lane_busy_seconds["ep2"] > 0.0


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def _down_handler(self, **kwargs):
        federation = _faulty_paper_federation(
            ep2_profile=FaultProfile.always_down()
        )
        return _handler(
            federation, max_retries=1, breaker_threshold=2,
            breaker_cooldown_seconds=1.0, **kwargs
        )

    def _fail_once(self, handler):
        future = handler.submit(Request("ep2", ASK_TEXT, kind="ASK"))
        with pytest.raises(EndpointUnavailableError):
            future.result()
        return future

    def test_opens_after_threshold_and_fast_fails(self):
        handler, context = self._down_handler()
        with handler:
            self._fail_once(handler)
            self._fail_once(handler)
            assert context.metrics.breaker_opens == 1
            before = context.metrics.requests_failed
            future = handler.submit(Request("ep2", ASK_TEXT, kind="ASK"))
            with pytest.raises(CircuitBreakerOpenError):
                future.result()
            # Fast fail: no endpoint contact, no attempts, no lane time.
            assert context.metrics.requests_failed == before
            assert context.metrics.breaker_fast_fails == 1

    def test_half_open_probe_reopens_on_failure(self):
        handler, context = self._down_handler()
        with handler:
            self._fail_once(handler)
            self._fail_once(handler)
            open_until = handler._health["ep2"].open_until
            # Burn virtual time past the cooldown; the next submission
            # is the half-open probe, which really contacts the (still
            # dead) endpoint and re-opens with a doubled cooldown.
            context.charge(open_until - context.metrics.virtual_seconds + 0.01)
            self._fail_once(handler)
            health = handler._health["ep2"]
            assert health.state == "open"
            assert context.metrics.breaker_opens == 2
            assert health.open_until - context.metrics.virtual_seconds \
                > 1.0  # doubled beyond the base cooldown

    def test_half_open_probe_closes_on_success(self):
        handler, context = self._down_handler()
        context.trace = QueryTrace()
        with handler:
            self._fail_once(handler)
            self._fail_once(handler)
            # The endpoint comes back up.
            handler.federation.endpoint("ep2").set_faults(None)
            open_until = handler._health["ep2"].open_until
            context.charge(open_until - context.metrics.virtual_seconds + 0.01)
            response = handler.execute(Request("ep2", ASK_TEXT, kind="ASK"))
            assert bool(response.value) is True
            assert handler._health["ep2"].state == "closed"
        kinds = [event.kind for event in context.trace]
        assert "breaker_open" in kinds
        assert "breaker_close" in kinds

    def test_breaker_disabled_never_trips(self):
        federation = _faulty_paper_federation(
            ep2_profile=FaultProfile.always_down()
        )
        handler, context = _handler(
            federation, max_retries=0, breaker_threshold=None
        )
        with handler:
            for _ in range(5):
                future = handler.submit(Request("ep2", ASK_TEXT, kind="ASK"))
                with pytest.raises(EndpointUnavailableError):
                    future.result()
        assert context.metrics.breaker_opens == 0
        assert context.metrics.breaker_fast_fails == 0


# ----------------------------------------------------------------------
# Partial results and replica rerouting (engine level)
# ----------------------------------------------------------------------


class TestPartialResults:
    def test_outage_without_partial_aborts(self):
        federation = _faulty_paper_federation(
            ep2_profile=FaultProfile.always_down()
        )
        outcome = LusailEngine(federation).execute(QUERY_QA)
        assert outcome.status == "RE"
        assert outcome.result is None

    def test_outage_with_partial_degrades(self):
        federation = _faulty_paper_federation(
            ep2_profile=FaultProfile.always_down()
        )
        outcome = LusailEngine(
            federation, partial_results=True
        ).execute(QUERY_QA, trace=True)
        assert outcome.status == "PARTIAL"
        assert result_values(outcome.result) <= QA_EXPECTED
        report = outcome.completeness
        assert not report.complete
        assert report.endpoints_failed == ["ep2"]
        assert report.status_counts.get("unavailable", 0) > 0
        kinds = [event.kind for event in outcome.trace]
        assert "completeness" in kinds
        # The narrative must render without crashing on the new kinds.
        assert "PARTIAL result" in render_trace(outcome.trace)

    def test_retries_absorb_flakiness_exactly(self):
        fault_free = LusailEngine(build_paper_federation()).execute(QUERY_QA)
        federation = _faulty_paper_federation(
            ep1_profile=FaultProfile(failure_rate=0.05, seed=5),
            ep2_profile=FaultProfile(failure_rate=0.05, seed=5),
        )
        outcome = LusailEngine(federation).execute(QUERY_QA)
        assert outcome.status == "OK"
        assert result_values(outcome.result) == result_values(
            fault_free.result
        )
        assert outcome.completeness.complete

    def test_replica_recovers_full_answer(self):
        replica = LocalEndpoint.from_triples("ep2b", nt_parse(EP2_TRIPLES))
        federation = _faulty_paper_federation(
            ep2_profile=FaultProfile.always_down(), extra=[replica]
        )
        federation.register_replica("ep2", "ep2b")
        # Standby replicas are excluded from normal selection.
        assert "ep2b" not in federation.endpoint_ids
        assert "ep2b" in federation.all_endpoint_ids
        outcome = LusailEngine(
            federation, partial_results=True
        ).execute(QUERY_QA)
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == QA_EXPECTED
        report = outcome.completeness
        assert report.complete
        assert report.rerouted == {"ep2": "ep2b"}

    def test_mid_query_outage_degrades_subquery(self):
        # First measure how many requests ep2 answers fault-free, then
        # replay with an outage window covering only the tail — source
        # selection succeeds, later requests to ep2 fail.
        calls = []
        federation = build_paper_federation()
        ep2 = federation.endpoint("ep2")
        original = ep2.execute
        ep2.execute = lambda text: (calls.append(text), original(text))[1]
        baseline = LusailEngine(federation).execute(QUERY_QA)
        assert baseline.status == "OK"
        tail = OutageWindow(start=len(calls) - 1)
        federation2 = _faulty_paper_federation(
            ep2_profile=FaultProfile(outage_windows=(tail,))
        )
        outcome = LusailEngine(
            federation2, partial_results=True
        ).execute(QUERY_QA, trace=True)
        assert outcome.status == "PARTIAL"
        assert result_values(outcome.result) <= QA_EXPECTED
        assert not outcome.completeness.complete


# ----------------------------------------------------------------------
# Threaded vs simulated equivalence under faults
# ----------------------------------------------------------------------


class TestThreadedFaultEquivalence:
    @pytest.mark.parametrize("rate,seed", [(0.2, 3), (0.3, 11)])
    def test_threaded_bit_identical_under_transient_faults(self, rate, seed):
        def run(use_threads):
            federation = _faulty_paper_federation(
                ep1_profile=FaultProfile(failure_rate=rate, seed=seed),
                ep2_profile=FaultProfile(failure_rate=rate, seed=seed),
            )
            engine = LusailEngine(
                federation, use_threads=use_threads, max_retries=8
            )
            outcome = engine.execute(QUERY_QA)
            assert outcome.status == "OK", outcome.error
            return outcome

        simulated = run(False)
        threaded = run(True)
        assert result_values(threaded.result) == result_values(
            simulated.result
        )
        sim, thr = simulated.metrics, threaded.metrics
        assert thr.requests == sim.requests
        assert thr.requests_failed == sim.requests_failed
        assert thr.retries == sim.retries
        assert thr.virtual_seconds == pytest.approx(sim.virtual_seconds)
        assert thr.bytes_sent == sim.bytes_sent


# ----------------------------------------------------------------------
# Hypothesis: partial answers are subsets with accurate reports
# ----------------------------------------------------------------------


_ENTITIES = [IRI(f"http://x/e{i}") for i in range(6)]
_PREDICATES = [IRI(f"http://x/p{i}") for i in range(3)]

_triples = st.builds(
    Triple,
    st.sampled_from(_ENTITIES),
    st.sampled_from(_PREDICATES),
    st.sampled_from(_ENTITIES),
)

_federation_data = st.lists(
    st.lists(_triples, min_size=1, max_size=10), min_size=2, max_size=3
)

_chain_predicates = st.lists(
    st.sampled_from(_PREDICATES), min_size=1, max_size=3
)


def _chain_query(predicates) -> str:
    patterns = []
    for index, predicate in enumerate(predicates):
        patterns.append(f"?v{index} {predicate.n3()} ?v{index + 1} .")
    variables = " ".join(f"?v{i}" for i in range(len(predicates) + 1))
    return f"SELECT {variables} WHERE {{ {' '.join(patterns)} }}"


def _build(endpoint_data, down_index=None):
    endpoints = [
        LocalEndpoint.from_triples(
            f"ep{i}",
            triples,
            faults=(
                FaultProfile.always_down() if i == down_index else None
            ),
        )
        for i, triples in enumerate(endpoint_data)
    ]
    return Federation(endpoints, network=LOCAL_CLUSTER)


@settings(max_examples=30, deadline=None)
@given(_federation_data, _chain_predicates, st.integers(0, 2))
def test_partial_answer_is_subset_with_accurate_report(
    endpoint_data, predicates, down_seed
):
    query_text = _chain_query(predicates)
    down_index = down_seed % len(endpoint_data)

    full = LusailEngine(_build(endpoint_data)).execute(query_text)
    assert full.status == "OK", full.error
    full_rows = {tuple(row) for row in full.result.rows}

    outcome = LusailEngine(
        _build(endpoint_data, down_index=down_index), partial_results=True
    ).execute(query_text)
    assert outcome.status in ("OK", "PARTIAL"), outcome.error
    partial_rows = {tuple(row) for row in outcome.result.rows}

    # BGP-only queries are monotonic: dropping an endpoint can only
    # lose answers, never invent them.
    assert partial_rows <= full_rows
    report = outcome.completeness
    # The report is honest: claiming completeness means nothing is lost,
    # and any endpoint that failed is named.
    if report.complete:
        assert partial_rows == full_rows
        assert outcome.status == "OK"
    else:
        assert outcome.status == "PARTIAL"
        assert f"ep{down_index}" in report.endpoints_failed
