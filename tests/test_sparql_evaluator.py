"""Tests for SPARQL evaluation over the triple store."""

import pytest

from repro.rdf import IRI, Literal, Triple, parse as nt_parse
from repro.sparql import Evaluator, parse_query
from repro.store import TripleStore

DATA = """
<http://u/kim> <http://ub/advisor> <http://u/tim> .
<http://u/kim> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ub/GradStudent> .
<http://u/lee> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ub/GradStudent> .
<http://u/lee> <http://ub/advisor> <http://u/ben> .
<http://u/tim> <http://ub/teacherOf> <http://u/c1> .
<http://u/ben> <http://ub/teacherOf> <http://u/c2> .
<http://u/kim> <http://ub/takesCourse> <http://u/c1> .
<http://u/lee> <http://ub/takesCourse> <http://u/c3> .
<http://u/tim> <http://ub/age> "45"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://u/ben> <http://ub/age> "38"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://u/tim> <http://ub/name> "Tim Smith" .
<http://u/ben> <http://ub/name> "Ben Jones" .
<http://u/kim> <http://ub/email> "kim@u.edu" .
"""


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator(TripleStore(nt_parse(DATA)))


def rows(evaluator, text):
    return evaluator.select(parse_query(text)).rows


class TestBGP:
    def test_single_pattern(self, evaluator):
        result = rows(evaluator, "SELECT ?s WHERE { ?s <http://ub/advisor> ?p }")
        assert {r[0].value for r in result} == {"http://u/kim", "http://u/lee"}

    def test_join_two_patterns(self, evaluator):
        result = rows(
            evaluator,
            "SELECT ?s ?c WHERE { ?s <http://ub/advisor> ?p . "
            "?p <http://ub/teacherOf> ?c }",
        )
        assert len(result) == 2

    def test_triangle_join(self, evaluator):
        result = rows(
            evaluator,
            "SELECT ?s WHERE { ?s <http://ub/advisor> ?p . "
            "?p <http://ub/teacherOf> ?c . ?s <http://ub/takesCourse> ?c }",
        )
        assert [r[0].value for r in result] == ["http://u/kim"]

    def test_empty_result(self, evaluator):
        assert rows(evaluator, "SELECT ?s WHERE { ?s <http://ub/missing> ?o }") == []

    def test_ground_pattern(self, evaluator):
        result = rows(
            evaluator,
            "SELECT ?s WHERE { <http://u/kim> <http://ub/advisor> <http://u/tim> . "
            "?s <http://ub/teacherOf> ?c }",
        )
        assert len(result) == 2  # cross product with satisfied ground pattern


class TestFilters:
    def test_numeric_comparison(self, evaluator):
        result = rows(
            evaluator,
            "SELECT ?p WHERE { ?p <http://ub/age> ?a . FILTER(?a > 40) }",
        )
        assert [r[0].value for r in result] == ["http://u/tim"]

    def test_regex(self, evaluator):
        result = rows(
            evaluator,
            'SELECT ?p WHERE { ?p <http://ub/name> ?n . FILTER regex(?n, "^Tim") }',
        )
        assert [r[0].value for r in result] == ["http://u/tim"]

    def test_boolean_combination(self, evaluator):
        result = rows(
            evaluator,
            "SELECT ?p WHERE { ?p <http://ub/age> ?a . FILTER(?a > 30 && ?a < 40) }",
        )
        assert [r[0].value for r in result] == ["http://u/ben"]

    def test_error_is_false(self, evaluator):
        # comparing an IRI with a number errors -> row dropped, not raised
        result = rows(
            evaluator,
            "SELECT ?s WHERE { ?s <http://ub/advisor> ?p . FILTER(?p > 4) }",
        )
        assert result == []

    def test_not_exists(self, evaluator):
        # advisors who teach nothing: none in this data
        result = rows(
            evaluator,
            "SELECT ?p WHERE { ?s <http://ub/advisor> ?p . "
            "FILTER NOT EXISTS { ?p <http://ub/teacherOf> ?c } }",
        )
        assert result == []

    def test_not_exists_finds_gap(self, evaluator):
        # students with no email: lee
        result = rows(
            evaluator,
            "SELECT ?s WHERE { ?s a <http://ub/GradStudent> . "
            "FILTER NOT EXISTS { ?s <http://ub/email> ?e } }",
        )
        assert [r[0].value for r in result] == ["http://u/lee"]

    def test_exists_correlation(self, evaluator):
        result = rows(
            evaluator,
            "SELECT ?s WHERE { ?s a <http://ub/GradStudent> . "
            "FILTER EXISTS { ?s <http://ub/email> ?e } }",
        )
        assert [r[0].value for r in result] == ["http://u/kim"]

    def test_in_operator(self, evaluator):
        result = rows(
            evaluator,
            "SELECT ?p WHERE { ?p <http://ub/age> ?a . FILTER(?a IN (38, 99)) }",
        )
        assert [r[0].value for r in result] == ["http://u/ben"]

    def test_bound_with_optional(self, evaluator):
        result = rows(
            evaluator,
            "SELECT ?s WHERE { ?s a <http://ub/GradStudent> . "
            "OPTIONAL { ?s <http://ub/email> ?e } FILTER(!BOUND(?e)) }",
        )
        assert [r[0].value for r in result] == ["http://u/lee"]


class TestOptionalUnionValues:
    def test_optional_keeps_unmatched(self, evaluator):
        result = evaluator.select(parse_query(
            "SELECT ?s ?e WHERE { ?s a <http://ub/GradStudent> . "
            "OPTIONAL { ?s <http://ub/email> ?e } }"
        ))
        by_student = {row[0].value: row[1] for row in result.rows}
        assert by_student["http://u/kim"] == Literal("kim@u.edu")
        assert by_student["http://u/lee"] is None

    def test_union(self, evaluator):
        result = rows(
            evaluator,
            "SELECT ?x WHERE { { ?x <http://ub/teacherOf> ?c } UNION "
            "{ ?x <http://ub/takesCourse> ?c } }",
        )
        assert len(result) == 4

    def test_values_restricts(self, evaluator):
        result = rows(
            evaluator,
            "SELECT ?s ?p WHERE { VALUES ?s { <http://u/kim> } "
            "?s <http://ub/advisor> ?p }",
        )
        assert len(result) == 1
        assert result[0][1].value == "http://u/tim"

    def test_values_multi_column(self, evaluator):
        result = rows(
            evaluator,
            "SELECT ?s ?p WHERE { VALUES (?s ?p) { "
            "(<http://u/kim> <http://u/tim>) (<http://u/kim> <http://u/ben>) } "
            "?s <http://ub/advisor> ?p }",
        )
        assert len(result) == 1

    def test_subselect(self, evaluator):
        result = rows(
            evaluator,
            "SELECT ?s WHERE { ?s <http://ub/takesCourse> ?c "
            "{ SELECT ?c WHERE { ?p <http://ub/teacherOf> ?c } } }",
        )
        assert [r[0].value for r in result] == ["http://u/kim"]


class TestModifiers:
    def test_distinct(self, evaluator):
        q = "SELECT ?p WHERE { ?s <http://ub/advisor> ?p . ?p <http://ub/age> ?a }"
        assert len(rows(evaluator, q)) == 2
        assert len(rows(evaluator, "SELECT DISTINCT ?a WHERE { ?x <http://ub/age> ?a }")) == 2

    def test_order_by(self, evaluator):
        result = rows(evaluator, "SELECT ?a WHERE { ?p <http://ub/age> ?a } ORDER BY ?a")
        values = [int(r[0].lexical) for r in result]
        assert values == sorted(values)

    def test_order_by_desc(self, evaluator):
        result = rows(
            evaluator, "SELECT ?a WHERE { ?p <http://ub/age> ?a } ORDER BY DESC(?a)"
        )
        values = [int(r[0].lexical) for r in result]
        assert values == sorted(values, reverse=True)

    def test_limit_offset(self, evaluator):
        all_rows = rows(evaluator, "SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s")
        page = rows(evaluator, "SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s LIMIT 3 OFFSET 2")
        assert page == all_rows[2:5]

    def test_count(self, evaluator):
        result = rows(evaluator, "SELECT (COUNT(*) AS ?c) WHERE { ?s <http://ub/advisor> ?o }")
        assert result == [(Literal.integer(2),)]

    def test_count_distinct(self, evaluator):
        result = rows(
            evaluator,
            "SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?x <http://ub/takesCourse> ?c }",
        )
        assert int(result[0][0].lexical) == 2


class TestAsk:
    def test_ask_true(self, evaluator):
        assert evaluator.ask(parse_query("ASK { ?s <http://ub/advisor> ?o }"))

    def test_ask_false(self, evaluator):
        assert not evaluator.ask(parse_query("ASK { ?s <http://ub/nothing> ?o }"))

    def test_ask_with_constant(self, evaluator):
        assert evaluator.ask(
            parse_query("ASK { <http://u/kim> <http://ub/advisor> ?o }")
        )
