"""Deadline-aware execution: budgets, adaptive timeouts, hedging,
admission control.

The invariants under test:

- a :class:`Deadline` is plain virtual-time arithmetic: child budgets
  are fractions of what remains and never outlive the parent;
- the P² streaming quantile estimator is exact below five observations
  and tracks the true quantile closely on longer streams;
- per-request timeouts adapt to a warm endpoint's p95 × k, clamped
  between the floor and the static ceiling, and a cut request is
  charged exactly the censored timeout (never the stall it avoided);
- hedged requests change nothing against a healthy primary and recover
  the full answer against a stalled one, with honest win/cancel
  accounting — bit-identically across execution modes;
- load shedding (request-level ``max_inflight``, engine-level
  :class:`AdmissionController`) rejects work up front instead of
  queueing it into everyone's deadline;
- a deadline-bounded query finishes within ``deadline + one request
  timeout`` (plus engine compute), returns a subset of the unbounded
  answer, and reports PARTIAL honestly (Hypothesis-checked).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from .conftest import (
    EP1_TRIPLES,
    EP2_TRIPLES,
    QA_EXPECTED,
    QUERY_QA,
    result_values,
)
from repro.core import LusailEngine
from repro.endpoint import (
    FaultProfile,
    LOCAL_CLUSTER,
    LocalEndpoint,
    QueryRejectedError,
    RequestTimeoutError,
)
from repro.federation import (
    AdmissionController,
    Deadline,
    Federation,
    LatencyTracker,
)
from repro.federation.deadline import P2Quantile
from repro.federation.request_handler import ElasticRequestHandler, Request
from repro.rdf import IRI, Triple
from repro.rdf import parse as nt_parse

ASK_TEXT = (
    'ASK { ?s <http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor> ?o . }'
)

#: deterministic straggler: every request answers this much late
STALL = FaultProfile(latency_spike_rate=1.0, latency_spike_seconds=1e6)


def _federation(ep1_profile=None, ep2_profile=None, replicate_ep2=False):
    endpoints = [
        LocalEndpoint.from_triples(
            "ep1", nt_parse(EP1_TRIPLES), faults=ep1_profile
        ),
        LocalEndpoint.from_triples(
            "ep2", nt_parse(EP2_TRIPLES), faults=ep2_profile
        ),
    ]
    if replicate_ep2:
        endpoints.append(
            LocalEndpoint.from_triples("ep2-replica", nt_parse(EP2_TRIPLES))
        )
    federation = Federation(endpoints, network=LOCAL_CLUSTER)
    if replicate_ep2:
        federation.register_replica("ep2", "ep2-replica")
    return federation


def _handler(federation, **kwargs):
    context = federation.make_context(
        partial_results=kwargs.pop("partial_results", False),
        deadline=kwargs.pop("deadline", None),
    )
    return ElasticRequestHandler(federation, context, **kwargs), context


# ----------------------------------------------------------------------
# Deadline arithmetic
# ----------------------------------------------------------------------


class TestDeadline:
    def test_budget_math(self):
        deadline = Deadline(2.0)
        assert deadline.expires_at == 2.0
        assert deadline.remaining(0.0) == 2.0
        assert deadline.remaining(1.5) == pytest.approx(0.5)
        assert deadline.remaining(3.0) == 0.0
        assert not deadline.expired(1.999)
        assert deadline.expired(2.0)

    def test_anchored_start(self):
        deadline = Deadline(1.0, start=5.0)
        assert deadline.expires_at == 6.0
        assert deadline.remaining(5.5) == pytest.approx(0.5)

    def test_child_is_fraction_of_remaining(self):
        deadline = Deadline(2.0)
        analysis = deadline.child(deadline.analysis_fraction)
        assert analysis.budget_seconds == pytest.approx(
            2.0 * deadline.analysis_fraction
        )
        assert analysis.start == deadline.start
        # Anchored mid-flight: half of the 1.0s that remains at t=1.
        late = deadline.child(0.5, now=1.0)
        assert late.budget_seconds == pytest.approx(0.5)
        assert late.expires_at == pytest.approx(1.5)
        assert late.expires_at <= deadline.expires_at

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)
        with pytest.raises(ValueError):
            Deadline(1.0, analysis_fraction=1.0)
        with pytest.raises(ValueError):
            Deadline(1.0).child(0.0)


# ----------------------------------------------------------------------
# P² quantiles and the latency tracker
# ----------------------------------------------------------------------


def _reference_quantile(values, q):
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, -(-int(q * len(ordered) * 1000) // 1000) - 1))
    return ordered[index]


class TestP2Quantile:
    def test_small_samples_are_exact(self):
        estimator = P2Quantile(0.5)
        assert estimator.value() is None
        for value in (5.0, 1.0, 4.0):
            estimator.observe(value)
        # Exact over the sorted sample [1, 4, 5]: median is 4.
        assert estimator.value() == 4.0

    @pytest.mark.parametrize("q", [0.5, 0.95])
    def test_tracks_long_streams(self, q):
        # Deterministic pseudo-uniform stream (Weyl sequence).
        values = [((i * 2654435761) % 100_000) / 100_000 for i in range(500)]
        estimator = P2Quantile(q)
        for value in values:
            estimator.observe(value)
        ordered = sorted(values)
        truth = ordered[min(len(ordered) - 1, int(q * len(ordered)))]
        assert estimator.value() == pytest.approx(truth, abs=0.05)
        # Markers bound the estimate by the observed extremes.
        assert min(values) <= estimator.value() <= max(values)

    def test_tracker_counts_and_snapshot(self):
        tracker = LatencyTracker()
        assert tracker.quantile("ep1", 0.95) is None
        assert tracker.count("ep1") == 0
        for value in (0.1, 0.2, 0.3):
            tracker.observe("ep1", value)
        assert tracker.count("ep1") == 3
        assert tracker.quantile("ep1", 0.5) == 0.2
        snapshot = tracker.snapshot()
        assert snapshot["ep1"]["count"] == 3.0
        assert set(snapshot["ep1"]) == {"count", "p50", "p95", "p99"}


# ----------------------------------------------------------------------
# Adaptive per-request timeouts
# ----------------------------------------------------------------------


class TestAdaptiveTimeouts:
    def _warm_handler(self, observed, **kwargs):
        tracker = LatencyTracker()
        for value in observed:
            tracker.observe("ep2", value)
        handler, context = _handler(
            _federation(),
            latency_tracker=tracker,
            request_timeout_seconds=1.0,
            adaptive_timeout_multiplier=4.0,
            timeout_warmup=4,
            **kwargs,
        )
        return handler

    def test_cold_endpoint_uses_static_default(self):
        handler = self._warm_handler([])
        assert handler._timeout_for("ep2") == 1.0
        assert handler._timeout_for("ep1") == 1.0

    def test_warm_endpoint_uses_p95_times_k(self):
        handler = self._warm_handler([0.1, 0.1, 0.1, 0.1])
        assert handler._timeout_for("ep2") == pytest.approx(0.4)
        # Other endpoints are still cold.
        assert handler._timeout_for("ep1") == 1.0

    def test_clamped_between_floor_and_ceiling(self):
        fast = self._warm_handler([0.001] * 8)
        assert fast._timeout_for("ep2") == fast.timeout_floor_seconds
        slow = self._warm_handler([10.0] * 8)
        assert slow._timeout_for("ep2") == 1.0

    def test_no_ceiling_means_no_timeout(self):
        handler, _ = _handler(_federation())
        assert handler._timeout_for("ep2") is None

    def test_timed_out_request_charges_censored_cost(self):
        handler, context = _handler(
            _federation(ep2_profile=STALL),
            request_timeout_seconds=0.5,
            adaptive_timeout_multiplier=None,
        )
        with handler:
            future = handler.submit(Request("ep2", ASK_TEXT, kind="ASK"))
            with pytest.raises(RequestTimeoutError) as excinfo:
                future.result()
        assert not excinfo.value.deadline
        metrics = context.metrics
        assert metrics.timeouts == 1
        assert metrics.requests_failed == 1
        # The client stopped waiting at the timeout: exactly 0.5s is
        # charged to the clock and the lane, never the 1e6s stall.
        assert metrics.virtual_seconds == pytest.approx(0.5)
        assert metrics.lane_busy_seconds["ep2"] == pytest.approx(0.5)
        # The tracker saw the censored cancellation point.
        assert handler.latency.quantile("ep2", 0.5) == 0.5

    def test_timeouts_feed_the_breaker(self):
        handler, context = _handler(
            _federation(ep2_profile=STALL),
            request_timeout_seconds=0.5,
            adaptive_timeout_multiplier=None,
            breaker_threshold=2,
            partial_results=True,
        )
        with handler:
            for _ in range(4):
                handler.settle(
                    handler.submit(Request("ep2", ASK_TEXT, kind="ASK"))
                )
        assert context.metrics.breaker_opens >= 1
        assert context.metrics.breaker_fast_fails >= 1


# ----------------------------------------------------------------------
# Deadline clamps in the request handler
# ----------------------------------------------------------------------


class TestDeadlineClamps:
    def test_request_clamped_at_remaining_budget(self):
        handler, context = _handler(
            _federation(ep2_profile=STALL), deadline=Deadline(0.3)
        )
        with handler:
            future = handler.submit(Request("ep2", ASK_TEXT, kind="ASK"))
            with pytest.raises(RequestTimeoutError) as excinfo:
                future.result()
        assert excinfo.value.deadline
        assert context.metrics.deadline_exceeded == 1
        assert context.metrics.virtual_seconds == pytest.approx(0.3)

    def test_submit_past_expiry_fails_fast_for_free(self):
        handler, context = _handler(
            _federation(ep2_profile=STALL),
            deadline=Deadline(0.3),
            partial_results=True,
        )
        with handler:
            handler.settle(handler.submit(Request("ep2", ASK_TEXT, kind="ASK")))
            spent = context.metrics.virtual_seconds
            assert spent == pytest.approx(0.3)
            response, error = handler.settle(
                handler.submit(Request("ep1", ASK_TEXT, kind="ASK"))
            )
        assert response is None
        assert isinstance(error, RequestTimeoutError) and error.deadline
        # Nothing was sent: the clock did not move, no lane was held.
        assert context.metrics.virtual_seconds == spent
        assert "ep1" not in context.metrics.lane_busy_seconds
        assert context.completeness.complete is False


# ----------------------------------------------------------------------
# Hedged requests
# ----------------------------------------------------------------------


class TestHedging:
    def test_healthy_primary_is_bit_identical(self):
        def run(hedge):
            engine = LusailEngine(
                _federation(replicate_ep2=True),
                hedge_requests=hedge,
                hedge_threshold_seconds=1e-6,
            )
            outcome = engine.execute(QUERY_QA)
            assert outcome.status == "OK", outcome.error
            return outcome

        plain, hedged = run(False), run(True)
        assert result_values(hedged.result) == result_values(plain.result)
        assert result_values(hedged.result) == QA_EXPECTED
        # The healthy primary wins every race it is in.
        assert plain.metrics.hedges_launched == 0
        assert hedged.metrics.hedges_won == 0

    def test_stalled_primary_is_rescued_by_replica(self):
        engine = LusailEngine(
            _federation(ep2_profile=STALL, replicate_ep2=True),
            hedge_requests=True,
            hedge_threshold_seconds=0.05,
        )
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == QA_EXPECTED
        assert outcome.metrics.hedges_won >= 1
        assert outcome.metrics.requests_cancelled >= 1
        # Each race costs trigger + replica latency, not the 1e6s stall.
        assert outcome.metrics.virtual_seconds < 10.0

    def test_hedging_without_replica_is_inert(self):
        engine = LusailEngine(
            _federation(),
            hedge_requests=True,
            hedge_threshold_seconds=1e-6,
        )
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "OK"
        assert outcome.metrics.hedges_launched == 0

    @pytest.mark.parametrize("use_threads", [False, True])
    def test_modes_agree_bit_for_bit(self, use_threads):
        engine = LusailEngine(
            _federation(ep2_profile=STALL, replicate_ep2=True),
            hedge_requests=True,
            hedge_threshold_seconds=0.05,
            use_threads=use_threads,
        )
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "OK"
        assert result_values(outcome.result) == QA_EXPECTED
        # Virtual accounting is mode-independent (the hedge runs on the
        # orchestrating thread either way).
        assert outcome.metrics.hedges_won >= 1
        assert outcome.metrics.virtual_seconds == pytest.approx(
            LusailEngine(
                _federation(ep2_profile=STALL, replicate_ep2=True),
                hedge_requests=True,
                hedge_threshold_seconds=0.05,
            ).execute(QUERY_QA).metrics.virtual_seconds
        )


# ----------------------------------------------------------------------
# Load shedding and admission control
# ----------------------------------------------------------------------


class TestLoadShedding:
    def test_max_inflight_sheds_excess_submissions(self):
        handler, context = _handler(_federation(), max_inflight=2)
        with handler:
            first = handler.submit(Request("ep1", ASK_TEXT, kind="ASK"))
            second = handler.submit(Request("ep2", ASK_TEXT, kind="ASK"))
            third = handler.submit(Request("ep1", ASK_TEXT, kind="ASK"))
            with pytest.raises(QueryRejectedError):
                third.result()
            assert first.result() is not None
            assert second.result() is not None
        assert context.metrics.sheds == 1
        # The shed request cost nothing — two successes, no failures.
        assert context.metrics.requests == 2
        assert context.metrics.requests_failed == 0

    def test_admission_controller_bookkeeping(self):
        admission = AdmissionController(max_concurrent=2)
        assert admission.try_admit() and admission.try_admit()
        assert not admission.try_admit()
        assert admission.active == 2
        assert admission.admitted == 2
        assert admission.sheds == 1
        admission.release()
        assert admission.try_admit()
        with pytest.raises(RuntimeError):
            for _ in range(3):
                admission.release()

    def test_engine_sheds_queries_at_capacity(self):
        admission = AdmissionController(max_concurrent=0)
        engine = LusailEngine(_federation(), admission=admission)
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "RE"
        assert "admission" in outcome.error
        assert outcome.metrics.sheds == 1
        assert outcome.metrics.requests == 0
        # The slot frees up for the next caller.
        admission.max_concurrent = 1
        assert engine.execute(QUERY_QA).status == "OK"


# ----------------------------------------------------------------------
# End-to-end deadlines
# ----------------------------------------------------------------------


class TestDeadlineExecution:
    def test_stalled_endpoint_degrades_to_partial_within_budget(self):
        engine = LusailEngine(_federation(ep2_profile=STALL))
        outcome = engine.execute(
            QUERY_QA, deadline_seconds=1.0, trace=True
        )
        assert outcome.status == "PARTIAL"
        assert result_values(outcome.result) <= QA_EXPECTED
        # Completion <= deadline + one request timeout + engine compute.
        assert outcome.metrics.virtual_seconds <= 1.0 * 1.25 + 0.1
        assert outcome.metrics.deadline_exceeded >= 1
        assert not outcome.completeness.complete
        kinds = {event.kind for event in outcome.trace}
        assert kinds & {"timeout", "deadline"}

    def test_deadline_with_replica_and_hedging_recovers_full_answer(self):
        # A tight hedge trigger keeps the whole rescued workload (every
        # ep2 request re-answered by the replica at ~trigger cost each,
        # serialized on the lane) inside the 2s budget.
        engine = LusailEngine(
            _federation(ep2_profile=STALL, replicate_ep2=True),
            hedge_requests=True,
            hedge_threshold_seconds=0.02,
        )
        outcome = engine.execute(QUERY_QA, deadline_seconds=2.0)
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == QA_EXPECTED
        assert outcome.metrics.hedges_won >= 1
        assert outcome.metrics.virtual_seconds <= 2.0 * 1.25 + 0.1

    def test_latency_snapshot_lands_in_metrics(self):
        engine = LusailEngine(_federation())
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "OK"
        latency = outcome.metrics.endpoint_latency
        assert "ep1" in latency and "ep2" in latency
        assert latency["ep1"]["count"] >= 1
        assert "p95" in latency["ep1"]
        flat = outcome.metrics.snapshot()
        assert any(key.startswith("latency:ep1:") for key in flat)

    def test_fault_free_run_is_unchanged_by_a_generous_deadline(self):
        plain = LusailEngine(_federation()).execute(QUERY_QA)
        bounded = LusailEngine(_federation()).execute(
            QUERY_QA, deadline_seconds=3600.0
        )
        assert bounded.status == "OK"
        assert result_values(bounded.result) == result_values(plain.result)
        assert bounded.metrics.virtual_seconds == pytest.approx(
            plain.metrics.virtual_seconds
        )


# ----------------------------------------------------------------------
# The slow_queries fault knob
# ----------------------------------------------------------------------


class TestSlowQueriesKnob:
    def test_spikes_hit_only_matching_queries(self):
        profile = FaultProfile(
            latency_spike_rate=1.0,
            latency_spike_seconds=2.0,
            slow_queries="COUNT",
        )
        endpoint = LocalEndpoint.from_triples(
            "picky", nt_parse(EP1_TRIPLES), faults=profile
        )
        assert endpoint.execute(ASK_TEXT).latency_penalty_seconds == 0.0
        count_text = (
            'SELECT (COUNT(*) AS ?c) WHERE { ?s '
            '<http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor> ?o . }'
        )
        assert endpoint.execute(count_text).latency_penalty_seconds == 2.0

    def test_rate_one_is_a_deterministic_straggler(self):
        endpoint = LocalEndpoint.from_triples(
            "slow", nt_parse(EP1_TRIPLES),
            faults=FaultProfile(
                latency_spike_rate=1.0, latency_spike_seconds=0.5
            ),
        )
        penalties = {
            endpoint.execute(ASK_TEXT).latency_penalty_seconds
            for _ in range(5)
        }
        assert penalties == {0.5}

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(latency_spike_rate=1.5)


# ----------------------------------------------------------------------
# Hypothesis: deadline-bounded runs are bounded, honest subsets
# ----------------------------------------------------------------------


_ENTITIES = [IRI(f"http://x/e{i}") for i in range(6)]
_PREDICATES = [IRI(f"http://x/p{i}") for i in range(3)]

_triples = st.builds(
    Triple,
    st.sampled_from(_ENTITIES),
    st.sampled_from(_PREDICATES),
    st.sampled_from(_ENTITIES),
)

_federation_data = st.lists(
    st.lists(_triples, min_size=1, max_size=10), min_size=2, max_size=3
)

_chain_predicates = st.lists(
    st.sampled_from(_PREDICATES), min_size=1, max_size=3
)

_spikes = st.sampled_from([0.0, 0.05, 0.4, 3.0, 1e6])

DEADLINE_SECONDS = 0.5


def _chain_query(predicates) -> str:
    patterns = []
    for index, predicate in enumerate(predicates):
        patterns.append(f"?v{index} {predicate.n3()} ?v{index + 1} .")
    variables = " ".join(f"?v{i}" for i in range(len(predicates) + 1))
    return f"SELECT {variables} WHERE {{ {' '.join(patterns)} }}"


def _build(endpoint_data, slow_index, spike):
    endpoints = []
    for i, triples in enumerate(endpoint_data):
        profile = None
        if i == slow_index and spike:
            profile = FaultProfile(
                latency_spike_rate=1.0, latency_spike_seconds=spike
            )
        endpoints.append(
            LocalEndpoint.from_triples(f"ep{i}", triples, faults=profile)
        )
    return Federation(endpoints, network=LOCAL_CLUSTER)


@settings(max_examples=25, deadline=None)
@given(_federation_data, _chain_predicates, st.integers(0, 2), _spikes)
def test_deadline_bound_holds_and_rows_are_subset(
    endpoint_data, predicates, slow_seed, spike
):
    query_text = _chain_query(predicates)
    slow_index = slow_seed % len(endpoint_data)

    # The reference run waits out even the 1e6s stalls (virtual time is
    # free), so lift the default 3600s virtual timeout out of the way.
    unbounded = LusailEngine(
        _build(endpoint_data, slow_index, spike), partial_results=True
    ).execute(query_text, timeout_seconds=1e12)
    assert unbounded.status in ("OK", "PARTIAL"), unbounded.error
    unbounded_rows = {tuple(row) for row in unbounded.result.rows}

    outcome = LusailEngine(
        _build(endpoint_data, slow_index, spike)
    ).execute(query_text, deadline_seconds=DEADLINE_SECONDS)
    assert outcome.status in ("OK", "PARTIAL"), outcome.error

    # Completion is bounded by the deadline plus one request timeout
    # (the default fraction of the budget) plus a little engine compute.
    request_timeout = DEADLINE_SECONDS * 0.25
    assert outcome.metrics.virtual_seconds <= (
        DEADLINE_SECONDS + request_timeout + 0.1
    )
    # BGP-only queries are monotonic: a deadline can only lose answers.
    bounded_rows = {tuple(row) for row in outcome.result.rows}
    assert bounded_rows <= unbounded_rows
    # Honesty: claiming OK means nothing was lost.
    if outcome.status == "OK":
        assert bounded_rows == unbounded_rows
