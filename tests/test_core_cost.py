"""Unit tests for the SAPE cost model: probes, Chauvenet, delay rule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CardinalityEstimator,
    chauvenet_keep_mask,
    classify_delayed,
    robust_mean_std,
)
from repro.core.subquery import Subquery
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import ElasticRequestHandler, Federation
from repro.rdf import IRI, Triple, TriplePattern, Variable


def make_endpoint(endpoint_id, advisor_edges, teacher_edges):
    triples = []
    for i in range(advisor_edges):
        triples.append(Triple(
            IRI(f"http://{endpoint_id}/s{i}"), IRI("http://ub/advisor"),
            IRI(f"http://{endpoint_id}/p{i % 3}"),
        ))
    for i in range(teacher_edges):
        triples.append(Triple(
            IRI(f"http://{endpoint_id}/p{i % 3}"), IRI("http://ub/teacherOf"),
            IRI(f"http://{endpoint_id}/c{i}"),
        ))
    return LocalEndpoint.from_triples(endpoint_id, triples)


@pytest.fixture
def federation():
    return Federation(
        [make_endpoint("ep1", 10, 4), make_endpoint("ep2", 6, 2)],
        network=LOCAL_CLUSTER,
    )


ADVISOR = TriplePattern(Variable("s"), IRI("http://ub/advisor"), Variable("p"))
TEACHER = TriplePattern(Variable("p"), IRI("http://ub/teacherOf"), Variable("c"))


class TestChauvenet:
    def test_small_samples_keep_everything(self):
        assert chauvenet_keep_mask([1.0]) == [True]
        assert chauvenet_keep_mask([1.0, 100.0]) == [True, True]

    def test_identical_values_kept(self):
        assert all(chauvenet_keep_mask([5.0] * 10))

    def test_extreme_outlier_rejected(self):
        values = [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 1_000_000.0]
        mask = chauvenet_keep_mask(values)
        assert mask[-1] is False
        assert all(mask[:-1])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=3, max_size=40))
    def test_mask_alignment_property(self, values):
        mask = chauvenet_keep_mask(values)
        assert len(mask) == len(values)
        # at least one value always survives
        assert any(mask)

    def test_robust_mean_ignores_outlier(self):
        values = [10.0, 11.0, 9.0, 10.0, 10.0, 1_000_000.0]
        mean, std = robust_mean_std(values)
        assert mean < 100
        plain_mean = sum(values) / len(values)
        assert plain_mean > 100_000


class TestCardinalityEstimator:
    def test_pattern_counts_per_endpoint(self, federation):
        ctx = federation.make_context()
        estimator = CardinalityEstimator(ElasticRequestHandler(federation, ctx))
        counts = estimator.pattern_cardinalities(ADVISOR, ["ep1", "ep2"])
        assert counts == {"ep1": 10, "ep2": 6}

    def test_count_cache_avoids_probes(self, federation):
        cache = {}
        ctx1 = federation.make_context()
        estimator = CardinalityEstimator(
            ElasticRequestHandler(federation, ctx1), count_cache=cache
        )
        estimator.pattern_cardinalities(ADVISOR, ["ep1", "ep2"])
        assert ctx1.metrics.select_requests == 2
        ctx2 = federation.make_context()
        estimator2 = CardinalityEstimator(
            ElasticRequestHandler(federation, ctx2), count_cache=cache
        )
        estimator2.pattern_cardinalities(ADVISOR, ["ep1", "ep2"])
        assert ctx2.metrics.select_requests == 0

    def test_subquery_cardinality_uses_min_and_sum(self, federation):
        """C(sq, p) per endpoint is min(C(advisor), C(teacherOf));
        totals sum over endpoints: min(10,4) + min(6,2) = 6."""
        ctx = federation.make_context()
        estimator = CardinalityEstimator(ElasticRequestHandler(federation, ctx))
        subquery = Subquery(
            patterns=[ADVISOR, TEACHER],
            sources=("ep1", "ep2"),
            projection=[Variable("p")],
        )
        assert estimator.subquery_cardinality(subquery) == 6

    def test_subquery_cardinality_max_over_projection(self, federation):
        ctx = federation.make_context()
        estimator = CardinalityEstimator(ElasticRequestHandler(federation, ctx))
        subquery = Subquery(
            patterns=[ADVISOR, TEACHER],
            sources=("ep1", "ep2"),
            projection=[Variable("s"), Variable("p")],
        )
        # C(s) = 10 + 6 = 16 (only advisor mentions s); C(p) = 6; max = 16
        assert estimator.subquery_cardinality(subquery) == 16


def make_subqueries(cardinalities, fanouts=None):
    subqueries = []
    for index, cardinality in enumerate(cardinalities):
        fanout = 2 if fanouts is None else fanouts[index]
        subqueries.append(Subquery(
            patterns=[ADVISOR],
            sources=tuple(f"ep{i}" for i in range(fanout)),
            estimated_cardinality=float(cardinality),
            label=f"sq{index}",
        ))
    return subqueries


class TestClassifyDelayed:
    def test_default_threshold_delays_heavy_subquery(self):
        subqueries = make_subqueries([10, 10, 9, 11, 10_000])
        classify_delayed(subqueries, "mu+sigma")
        assert subqueries[-1].delayed
        # the small, near-average subqueries run concurrently
        assert not subqueries[0].delayed
        assert not subqueries[1].delayed
        assert not subqueries[2].delayed

    def test_mu_threshold_is_most_aggressive(self):
        subqueries_mu = make_subqueries([10, 20, 30, 40])
        classify_delayed(subqueries_mu, "mu")
        subqueries_sigma = make_subqueries([10, 20, 30, 40])
        classify_delayed(subqueries_sigma, "mu+2sigma")
        delayed_mu = sum(sq.delayed for sq in subqueries_mu)
        delayed_sigma = sum(sq.delayed for sq in subqueries_sigma)
        assert delayed_mu >= delayed_sigma

    def test_outliers_threshold(self):
        subqueries = make_subqueries([10, 11, 9, 10, 10, 9, 11, 1_000_000])
        classify_delayed(subqueries, "outliers")
        assert subqueries[-1].delayed
        assert not any(sq.delayed for sq in subqueries[:-1])

    def test_endpoint_fanout_triggers_delay(self):
        subqueries = make_subqueries(
            [10, 10, 10, 10, 10], fanouts=[2, 2, 2, 2, 64]
        )
        classify_delayed(subqueries, "mu+sigma")
        assert subqueries[-1].delayed

    def test_optional_subqueries_always_delayed(self):
        subqueries = make_subqueries([10, 10])
        subqueries[1].optional = True
        classify_delayed(subqueries, "mu+sigma")
        assert subqueries[1].delayed

    def test_never_delays_everything(self):
        subqueries = make_subqueries([100, 100])
        for subquery in subqueries:
            subquery.optional = True
        classify_delayed(subqueries, "mu")
        assert not all(sq.delayed for sq in subqueries)

    def test_single_subquery_never_delayed(self):
        subqueries = make_subqueries([1_000_000])
        classify_delayed(subqueries, "mu+sigma")
        assert not subqueries[0].delayed

    def test_unknown_threshold_rejected(self):
        with pytest.raises(ValueError):
            classify_delayed(make_subqueries([1, 2]), "median")
