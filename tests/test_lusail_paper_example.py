"""End-to-end tests on the paper's running example (Sections 1-3).

These tests pin the observable behaviour the paper describes: which
variables come out global, how Q_a decomposes, and that the federated
answer matches the three expected rows."""

import pytest

from repro.core import LusailEngine
from repro.federation import ElasticRequestHandler, SourceSelector
from repro.core.gjv import GJVDetector
from repro.rdf import UB, TriplePattern, Variable
from repro.sparql import parse_query

from .conftest import QA_EXPECTED, QUERY_QA, result_values


@pytest.fixture
def engine(paper_federation):
    return LusailEngine(paper_federation)


class TestGJVDetectionOnPaperExample:
    def detect(self, federation):
        query = parse_query(QUERY_QA)
        patterns = query.triple_patterns()
        context = federation.make_context()
        handler = ElasticRequestHandler(federation, context)
        selection = SourceSelector(handler).select_all(patterns)
        detector = GJVDetector(handler, selection)
        return detector.detect(patterns)

    def test_u_and_p_are_global(self, paper_federation):
        report = self.detect(paper_federation)
        names = {v.name for v in report.global_variables}
        assert "U" in names  # Tim's PhD is from a remote university
        assert "P" in names  # Ann advises but teaches nothing

    def test_s_and_c_are_local(self, paper_federation):
        report = self.detect(paper_federation)
        names = {v.name for v in report.global_variables}
        assert "S" not in names
        assert "C" not in names

    def test_forbidden_pairs_match_figure_6(self, paper_federation):
        report = self.detect(paper_federation)
        phd = TriplePattern(Variable("P"), UB.PhDDegreeFrom, Variable("U"))
        address = TriplePattern(Variable("U"), UB.address, Variable("A"))
        advisor = TriplePattern(Variable("S"), UB.advisor, Variable("P"))
        teacher = TriplePattern(Variable("P"), UB.teacherOf, Variable("C"))
        assert report.pair_forbidden(phd, address)
        assert report.pair_forbidden(advisor, teacher)
        takes = TriplePattern(Variable("S"), UB.takesCourse, Variable("C"))
        assert not report.pair_forbidden(advisor, takes)


class TestDecompositionOnPaperExample:
    def test_forbidden_pairs_are_split(self, engine):
        subqueries = engine.explain(QUERY_QA)
        assert len(subqueries) >= 2
        for subquery in subqueries:
            predicates = {p.predicate for p in subquery.patterns}
            assert not (
                UB.PhDDegreeFrom in predicates and UB.address in predicates
            )
            assert not (UB.advisor in predicates and UB.teacherOf in predicates)

    def test_all_patterns_covered_exactly_once(self, engine):
        subqueries = engine.explain(QUERY_QA)
        total = [p for sq in subqueries for p in sq.patterns]
        assert len(total) == 8
        assert len(set(total)) == 8

    def test_local_pairs_are_exploited(self, engine):
        """Figure 6: takesCourse is locally joinable with both advisor and
        teacherOf; any valid decomposition keeps it with one of them."""
        subqueries = engine.explain(QUERY_QA)
        for subquery in subqueries:
            predicates = {p.predicate for p in subquery.patterns}
            if UB.takesCourse in predicates:
                assert UB.advisor in predicates or UB.teacherOf in predicates
                break
        else:
            pytest.fail("no subquery contains the takesCourse pattern")


class TestEndToEnd:
    def test_qa_answers_match_paper(self, engine):
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == QA_EXPECTED

    def test_metrics_populated(self, engine):
        outcome = engine.execute(QUERY_QA)
        assert outcome.metrics.requests > 0
        assert outcome.metrics.virtual_seconds > 0
        assert outcome.metrics.phase_seconds.get("source_selection", 0) > 0
        assert "execution" in outcome.metrics.phase_seconds

    def test_cache_reduces_requests_on_second_run(self, engine):
        first = engine.execute(QUERY_QA)
        second = engine.execute(QUERY_QA)
        assert second.metrics.requests < first.metrics.requests
        assert result_values(second.result) == QA_EXPECTED

    def test_without_cache_requests_repeat(self, paper_federation):
        engine = LusailEngine(paper_federation, use_cache=False)
        first = engine.execute(QUERY_QA)
        second = engine.execute(QUERY_QA)
        assert second.metrics.requests == first.metrics.requests

    def test_lade_only_matches_results(self, paper_federation):
        engine = LusailEngine(paper_federation, enable_sape=False)
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == QA_EXPECTED

    def test_strict_checks_match_results(self, paper_federation):
        engine = LusailEngine(paper_federation, strict_checks=True)
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == QA_EXPECTED

    @pytest.mark.parametrize("threshold", ["mu", "mu+sigma", "mu+2sigma", "outliers"])
    def test_all_delay_thresholds_are_correct(self, paper_federation, threshold):
        engine = LusailEngine(paper_federation, delay_threshold=threshold)
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == QA_EXPECTED

    def test_naive_single_endpoint_union_misses_results(self, paper_federation):
        """Sanity check of the premise in Section 1: evaluating Q_a
        independently at each endpoint loses Tim's row."""
        from repro.sparql import Evaluator, parse_query as parse

        rows = set()
        for endpoint in paper_federation.endpoints():
            local = Evaluator(endpoint.store).select(parse(QUERY_QA))
            rows |= result_values(local)
        assert len(rows) == 2
        assert rows < QA_EXPECTED
