"""Unit tests for the SAPE subquery evaluator (Algorithm 3)."""

import pytest

from repro.core.sape import SubqueryEvaluator
from repro.core.subquery import Subquery
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import ElasticRequestHandler, Federation
from repro.rdf import IRI, Triple, TriplePattern, Variable
from repro.sparql import ResultSet


def iri(name):
    return IRI(f"http://x/{name}")


@pytest.fixture
def federation():
    ep1 = [
        Triple(iri("s1"), iri("p"), iri("o1")),
        Triple(iri("s2"), iri("p"), iri("o2")),
        Triple(iri("o1"), iri("q"), iri("z1")),
    ]
    ep2 = [
        Triple(iri("s3"), iri("p"), iri("o3")),
        Triple(iri("o3"), iri("q"), iri("z3")),
        Triple(iri("s4"), iri("r"), iri("w1")),
    ]
    return Federation(
        [
            LocalEndpoint.from_triples("ep1", ep1),
            LocalEndpoint.from_triples("ep2", ep2),
        ],
        network=LOCAL_CLUSTER,
    )


def make_evaluator(federation, **kwargs):
    context = federation.make_context()
    handler = ElasticRequestHandler(federation, context)
    return SubqueryEvaluator(handler, context, **kwargs), context


P_PATTERN = TriplePattern(Variable("s"), iri("p"), Variable("o"))
Q_PATTERN = TriplePattern(Variable("o"), iri("q"), Variable("z"))


class TestPhaseOne:
    def test_concurrent_evaluation(self, federation):
        evaluator, context = make_evaluator(federation)
        subquery = Subquery(
            patterns=[P_PATTERN], sources=("ep1", "ep2"), label="sq0",
            projection=[Variable("s"), Variable("o")],
        )
        relations = evaluator.evaluate([subquery])
        assert len(relations["sq0"]) == 3  # union over both endpoints
        assert subquery.actual_cardinality == 3
        assert context.metrics.select_requests == 2

    def test_empty_sources_give_empty_relation(self, federation):
        evaluator, _ = make_evaluator(federation)
        subquery = Subquery(
            patterns=[P_PATTERN], sources=(), label="sq0",
            projection=[Variable("s")],
        )
        relations = evaluator.evaluate([subquery])
        assert len(relations["sq0"]) == 0


class TestDelayedPhase:
    def test_delayed_bound_by_values(self, federation):
        evaluator, context = make_evaluator(federation)
        anchor = Subquery(
            patterns=[P_PATTERN], sources=("ep1",), label="anchor",
            projection=[Variable("s"), Variable("o")],
        )
        delayed = Subquery(
            patterns=[Q_PATTERN], sources=("ep1", "ep2"), label="delayed",
            projection=[Variable("o"), Variable("z")],
            estimated_cardinality=100.0, delayed=True,
        )
        relations = evaluator.evaluate([anchor, delayed])
        # only o1 flows into the bound subquery; z1 comes back, z3 not
        values = relations["delayed"].distinct_values(Variable("z"))
        assert values == {iri("z1")}

    def test_delayed_without_bindings_runs_unbound(self, federation):
        evaluator, _ = make_evaluator(federation)
        lonely = Subquery(
            patterns=[TriplePattern(Variable("a"), iri("r"), Variable("b"))],
            sources=("ep2",), label="lonely",
            projection=[Variable("a"), Variable("b")],
            estimated_cardinality=5.0, delayed=True,
        )
        relations = evaluator.evaluate([lonely])
        assert len(relations["lonely"]) == 1

    def test_values_block_size_splits_requests(self, federation):
        evaluator, context = make_evaluator(federation, values_block_size=1)
        anchor = Subquery(
            patterns=[P_PATTERN], sources=("ep1", "ep2"), label="anchor",
            projection=[Variable("o")],
        )
        delayed = Subquery(
            patterns=[Q_PATTERN], sources=("ep1", "ep2"), label="delayed",
            projection=[Variable("o"), Variable("z")],
            estimated_cardinality=100.0, delayed=True,
        )
        evaluator.evaluate([anchor, delayed])
        # 3 bound values -> 3 blocks x 2 endpoints, plus phase-1's 2
        assert context.metrics.select_requests == 2 + 6

    def test_most_selective_first(self, federation):
        evaluator, _ = make_evaluator(federation)
        small = Subquery(
            patterns=[P_PATTERN], sources=("ep1",), label="small",
            estimated_cardinality=2.0, delayed=True,
        )
        big = Subquery(
            patterns=[Q_PATTERN], sources=("ep1",), label="big",
            estimated_cardinality=50.0, delayed=True,
        )
        chosen = evaluator._most_selective([big, small], {})
        assert chosen is small


class TestBindingsDerivation:
    def test_intersection_across_relations(self):
        x = Variable("x")
        r1 = ResultSet([x], [(iri("a"),), (iri("b"),)])
        r2 = ResultSet([x], [(iri("b"),), (iri("c"),)])
        bindings = SubqueryEvaluator._derive_bindings([r1, r2])
        assert bindings[x] == {iri("b")}

    def test_unbound_cells_ignored(self):
        x = Variable("x")
        r1 = ResultSet([x], [(iri("a"),), (None,)])
        bindings = SubqueryEvaluator._derive_bindings([r1])
        assert bindings[x] == {iri("a")}


class TestSourceRefinement:
    def test_unbound_pattern_sources_refined(self):
        """A ?s ?p ?o subquery is relevant everywhere; bound ASKs with a
        sample of found bindings drop endpoints that cannot contribute."""
        ep1 = [Triple(iri("a"), iri("p"), iri("b"))]
        ep2 = [Triple(iri("c"), iri("q"), iri("d"))]
        federation = Federation(
            [
                LocalEndpoint.from_triples("ep1", ep1),
                LocalEndpoint.from_triples("ep2", ep2),
            ],
            network=LOCAL_CLUSTER,
        )
        evaluator, context = make_evaluator(federation)
        spo = Subquery(
            patterns=[TriplePattern(Variable("a"), Variable("p"), Variable("b"))],
            sources=("ep1", "ep2"),
            label="spo",
            projection=[Variable("a"), Variable("p"), Variable("b")],
            estimated_cardinality=10.0,
            delayed=True,
        )
        refined = evaluator._refine_sources(
            spo, Variable("a"), [iri("a")], ["ep1", "ep2"]
        )
        assert refined == ["ep1"]
        assert context.metrics.ask_requests == 2
