"""Property test: the SPARQL evaluator against a brute-force reference.

The reference implementation joins triple patterns by exhaustive
enumeration — no indexes, no join ordering, no shortcuts.  Hypothesis
generates small random stores and random BGPs (with repeated variables
and constants) and both implementations must agree exactly.
"""

from typing import Dict, List, Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Triple, TriplePattern, Variable
from repro.sparql import Evaluator
from repro.sparql.ast import GroupPattern, MinusPattern, OptionalPattern, Query
from repro.sparql.expressions import ExistsExpr
from repro.store import TripleStore

_TERMS = [IRI(f"http://x/t{i}") for i in range(4)]
_VARIABLES = [Variable(name) for name in ("a", "b", "c")]

_triples = st.builds(
    Triple,
    st.sampled_from(_TERMS),
    st.sampled_from(_TERMS),
    st.sampled_from(_TERMS),
)
_pattern_terms = st.one_of(st.sampled_from(_TERMS), st.sampled_from(_VARIABLES))
_patterns = st.builds(TriplePattern, _pattern_terms, _pattern_terms, _pattern_terms)


def _reference_bgp(
    store: TripleStore, patterns: List[TriplePattern]
) -> List[Dict[Variable, object]]:
    """Exhaustive nested-loop join, in syntactic pattern order."""
    solutions: List[Dict[Variable, object]] = [{}]
    for pattern in patterns:
        next_solutions = []
        for binding in solutions:
            for triple in store.triples():
                match = pattern.substitute(binding).matches(triple)
                if match is not None:
                    merged = dict(binding)
                    merged.update(match)
                    next_solutions.append(merged)
        solutions = next_solutions
    return solutions


@settings(max_examples=120, deadline=None)
@given(
    st.lists(_triples, max_size=12),
    st.lists(_patterns, min_size=1, max_size=3),
)
def test_evaluator_matches_reference(triples, patterns):
    store = TripleStore(triples)
    query = Query(form="SELECT", where=GroupPattern(elements=list(patterns)))
    header = query.projected_variables()

    evaluated = Evaluator(store).select(query)
    actual = sorted(
        tuple(None if cell is None else cell for cell in row)
        for row in evaluated.rows
    )

    reference = sorted(
        tuple(binding.get(variable) for variable in header)
        for binding in _reference_bgp(store, list(patterns))
    )
    assert actual == reference


def _rows_multiset(result):
    """A SELECT result as a sorted multiset of row tuples.

    OPTIONAL can leave cells unbound (``None``), and ``None`` does not
    order against terms — sort by repr so mixed rows stay sortable.
    """
    return sorted(
        (tuple(row) for row in result.rows),
        key=lambda row: tuple("" if cell is None else repr(cell) for cell in row),
    )


@settings(max_examples=120, deadline=None)
@given(
    st.lists(_triples, max_size=12),
    st.lists(_patterns, min_size=1, max_size=4),
)
def test_planned_executor_matches_seed_executor(triples, patterns):
    """Differential: the compile-once/batched pipeline vs the seed
    per-binding recursive joiner, on raw BGPs (repeated variables and
    constants included)."""
    store = TripleStore(triples)
    query = Query(form="SELECT", where=GroupPattern(elements=list(patterns)))
    planned = Evaluator(store, use_planner=True)
    seed = Evaluator(store, use_planner=False)
    assert _rows_multiset(planned.select(query)) == _rows_multiset(seed.select(query))
    assert planned.stats.count_probes == 0


@st.composite
def _composite_groups(draw):
    """A group mixing a base BGP with OPTIONAL / MINUS / FILTER EXISTS."""
    elements = list(draw(st.lists(_patterns, min_size=1, max_size=2)))
    if draw(st.booleans()):
        elements.append(OptionalPattern(group=GroupPattern(
            elements=list(draw(st.lists(_patterns, min_size=1, max_size=2)))
        )))
    if draw(st.booleans()):
        elements.append(MinusPattern(group=GroupPattern(
            elements=[draw(_patterns)]
        )))
    filters = []
    if draw(st.booleans()):
        filters.append(ExistsExpr(
            group=GroupPattern(elements=[draw(_patterns)]),
            negated=draw(st.booleans()),
        ))
    return GroupPattern(elements=elements, filters=filters)


@settings(max_examples=120, deadline=None)
@given(st.lists(_triples, max_size=12), _composite_groups())
def test_planned_executor_matches_seed_on_composite_groups(triples, group):
    """Differential proof over OPTIONAL, MINUS, and FILTER [NOT] EXISTS:
    the planner must not change semantics anywhere the BGP pipeline is
    reached (top level, OPTIONAL bodies, EXISTS subgroups)."""
    store = TripleStore(triples)
    query = Query(form="SELECT", where=group)
    planned = Evaluator(store, use_planner=True)
    seed = Evaluator(store, use_planner=False)
    assert _rows_multiset(planned.select(query)) == _rows_multiset(seed.select(query))
    assert planned.stats.count_probes == 0
    assert seed.stats.plans_built == 0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(_triples, max_size=12),
    st.lists(_patterns, min_size=1, max_size=2),
)
def test_ask_agrees_with_select(triples, patterns):
    store = TripleStore(triples)
    query = Query(form="SELECT", where=GroupPattern(elements=list(patterns)))
    ask = Query(form="ASK", where=GroupPattern(elements=list(patterns)))
    evaluator = Evaluator(store)
    assert evaluator.ask(ask) == bool(len(evaluator.select(query)))
