"""Property test: the SPARQL evaluator against a brute-force reference.

The reference implementation joins triple patterns by exhaustive
enumeration — no indexes, no join ordering, no shortcuts.  Hypothesis
generates small random stores and random BGPs (with repeated variables
and constants) and both implementations must agree exactly.
"""

from typing import Dict, List, Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Triple, TriplePattern, Variable
from repro.sparql import Evaluator, parse_query
from repro.sparql.ast import GroupPattern, Query
from repro.store import TripleStore

_TERMS = [IRI(f"http://x/t{i}") for i in range(4)]
_VARIABLES = [Variable(name) for name in ("a", "b", "c")]

_triples = st.builds(
    Triple,
    st.sampled_from(_TERMS),
    st.sampled_from(_TERMS),
    st.sampled_from(_TERMS),
)
_pattern_terms = st.one_of(st.sampled_from(_TERMS), st.sampled_from(_VARIABLES))
_patterns = st.builds(TriplePattern, _pattern_terms, _pattern_terms, _pattern_terms)


def _reference_bgp(
    store: TripleStore, patterns: List[TriplePattern]
) -> List[Dict[Variable, object]]:
    """Exhaustive nested-loop join, in syntactic pattern order."""
    solutions: List[Dict[Variable, object]] = [{}]
    for pattern in patterns:
        next_solutions = []
        for binding in solutions:
            for triple in store.triples():
                match = pattern.substitute(binding).matches(triple)
                if match is not None:
                    merged = dict(binding)
                    merged.update(match)
                    next_solutions.append(merged)
        solutions = next_solutions
    return solutions


@settings(max_examples=120, deadline=None)
@given(
    st.lists(_triples, max_size=12),
    st.lists(_patterns, min_size=1, max_size=3),
)
def test_evaluator_matches_reference(triples, patterns):
    store = TripleStore(triples)
    query = Query(form="SELECT", where=GroupPattern(elements=list(patterns)))
    header = query.projected_variables()

    evaluated = Evaluator(store).select(query)
    actual = sorted(
        tuple(None if cell is None else cell for cell in row)
        for row in evaluated.rows
    )

    reference = sorted(
        tuple(binding.get(variable) for variable in header)
        for binding in _reference_bgp(store, list(patterns))
    )
    assert actual == reference


@settings(max_examples=60, deadline=None)
@given(
    st.lists(_triples, max_size=12),
    st.lists(_patterns, min_size=1, max_size=2),
)
def test_ask_agrees_with_select(triples, patterns):
    store = TripleStore(triples)
    query = Query(form="SELECT", where=GroupPattern(elements=list(patterns)))
    ask = Query(form="ASK", where=GroupPattern(elements=list(patterns)))
    evaluator = Evaluator(store)
    assert evaluator.ask(ask) == bool(len(evaluator.select(query)))
