"""Unit tests for result-level join operators."""

import pytest

from repro.core import hash_join, left_outer_join, plan_join_order, union_all
from repro.core.optimizer import Relation, refine_with_bindings
from repro.endpoint import ExecutionContext, LOCAL_CLUSTER, MemoryLimitError, Region
from repro.rdf import IRI, Variable
from repro.sparql import ResultSet

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def iri(name):
    return IRI(f"http://ex/{name}")


def rs(variables, rows):
    return ResultSet(variables, rows)


class TestHashJoin:
    def test_inner_join_on_shared_variable(self):
        left = rs([X, Y], [(iri("a"), iri("b")), (iri("c"), iri("d"))])
        right = rs([Y, Z], [(iri("b"), iri("e")), (iri("q"), iri("f"))])
        result = hash_join(left, right)
        assert result.variables == (X, Y, Z)
        assert result.rows == [(iri("a"), iri("b"), iri("e"))]

    def test_join_is_symmetric(self):
        left = rs([X, Y], [(iri("a"), iri("b"))])
        right = rs([Y, Z], [(iri("b"), iri("e")), (iri("b"), iri("g"))])
        forward = hash_join(left, right)
        backward = hash_join(right, left)
        realign = [backward.variables.index(v) for v in forward.variables]
        backward_rows = {tuple(row[i] for i in realign) for row in backward.rows}
        assert {tuple(r) for r in forward.rows} == backward_rows

    def test_cross_product_when_disjoint(self):
        left = rs([X], [(iri("a"),), (iri("b"),)])
        right = rs([Z], [(iri("c"),)])
        result = hash_join(left, right)
        assert len(result) == 2
        assert result.variables == (X, Z)

    def test_multi_variable_join(self):
        left = rs([X, Y], [(iri("a"), iri("b")), (iri("a"), iri("c"))])
        right = rs([X, Y, Z], [(iri("a"), iri("b"), iri("e"))])
        result = hash_join(left, right)
        assert result.rows == [(iri("a"), iri("b"), iri("e"))]

    def test_unbound_cells_act_as_wildcards(self):
        left = rs([X, Y], [(iri("a"), None)])
        right = rs([Y, Z], [(iri("b"), iri("e"))])
        result = hash_join(left, right)
        # the unbound ?y joins with anything and gets filled in
        assert result.rows == [(iri("a"), iri("b"), iri("e"))]

    def test_empty_side_gives_empty(self):
        left = rs([X, Y], [])
        right = rs([Y, Z], [(iri("b"), iri("e"))])
        assert len(hash_join(left, right)) == 0

    def test_charges_context(self):
        ctx = ExecutionContext(LOCAL_CLUSTER, Region("c"))
        left = rs([X], [(iri("a"),)])
        right = rs([X], [(iri("a"),)])
        hash_join(left, right, ctx)
        assert ctx.metrics.virtual_seconds > 0

    def test_memory_budget_enforced(self):
        ctx = ExecutionContext(LOCAL_CLUSTER, Region("c"), max_intermediate_rows=3)
        left = rs([X], [(iri(f"a{i}"),) for i in range(4)])
        right = rs([Z], [(iri("z"),)])
        with pytest.raises(MemoryLimitError):
            hash_join(left, right, ctx)


class TestLeftOuterJoin:
    def test_unmatched_left_rows_survive(self):
        left = rs([X], [(iri("a"),), (iri("b"),)])
        right = rs([X, Y], [(iri("a"), iri("y1"))])
        result = left_outer_join(left, right)
        rows = set(result.rows)
        assert (iri("a"), iri("y1")) in rows
        assert (iri("b"), None) in rows

    def test_multiple_matches_multiply(self):
        left = rs([X], [(iri("a"),)])
        right = rs([X, Y], [(iri("a"), iri("y1")), (iri("a"), iri("y2"))])
        assert len(left_outer_join(left, right)) == 2

    def test_no_shared_variables_is_cross(self):
        left = rs([X], [(iri("a"),)])
        right = rs([Y], [(iri("y1"),), (iri("y2"),)])
        assert len(left_outer_join(left, right)) == 2


class TestUnionAll:
    def test_aligns_headers(self):
        first = rs([X, Y], [(iri("a"), iri("b"))])
        second = rs([Y, Z], [(iri("b"), iri("c"))])
        result = union_all([first, second])
        assert result.variables == (X, Y, Z)
        assert (iri("a"), iri("b"), None) in result.rows
        assert (None, iri("b"), iri("c")) in result.rows

    def test_empty_input(self):
        assert len(union_all([])) == 0


class TestPlanJoinOrder:
    def test_single_relation(self):
        plan = plan_join_order([Relation("a", 10, frozenset([X]))])
        assert plan.order == ["a"]
        assert plan.cost == 0

    def test_small_intermediates_win(self):
        """Starting from the small pair keeps intermediates tiny: joining
        b last means the big relation is probed against a 10-row hash
        table instead of materializing a big intermediate first."""
        relations = [
            Relation("a", 10, frozenset([X])),
            Relation("ab", 100, frozenset([X, Y])),
            Relation("b", 100_000, frozenset([Y])),
        ]
        plan = plan_join_order(relations)
        assert plan.order[-1] == "b"
        assert plan.estimated_size <= 100

    def test_avoids_cross_products_when_possible(self):
        relations = [
            Relation("a", 10, frozenset([X])),
            Relation("b", 10, frozenset([Y])),
            Relation("ab", 10, frozenset([X, Y])),
        ]
        plan = plan_join_order(relations)
        # "ab" must come between or before: first two joined relations
        # must share a variable
        first_two = plan.order[:2]
        assert "ab" in first_two

    def test_disconnected_relations_still_planned(self):
        relations = [
            Relation("a", 10, frozenset([X])),
            Relation("b", 20, frozenset([Y])),
        ]
        plan = plan_join_order(relations)
        assert sorted(plan.order) == ["a", "b"]

    def test_deterministic(self):
        relations = [
            Relation("r1", 50, frozenset([X, Y])),
            Relation("r2", 5, frozenset([Y, Z])),
            Relation("r3", 500, frozenset([Z])),
        ]
        assert plan_join_order(relations).order == plan_join_order(relations).order


class TestRefineWithBindings:
    def test_bounded_by_binding_count(self):
        relation = Relation("r", 1_000_000, frozenset([X, Y]))
        assert refine_with_bindings(relation, {X: {1, 2, 3}}) == 3

    def test_unrelated_bindings_ignored(self):
        relation = Relation("r", 42, frozenset([X]))
        assert refine_with_bindings(relation, {Z: {1}}) == 42
