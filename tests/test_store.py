"""Unit and property tests for the triple store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Literal, Triple, TriplePattern, Variable
from repro.store import AuthoritySummary, TripleStore, VoidDescription

EX = "http://ex/"


def iri(name):
    return IRI(EX + name)


@pytest.fixture
def store():
    s = TripleStore()
    s.add(Triple(iri("kim"), iri("advisor"), iri("tim")))
    s.add(Triple(iri("kim"), iri("takesCourse"), iri("c1")))
    s.add(Triple(iri("tim"), iri("teacherOf"), iri("c1")))
    s.add(Triple(iri("tim"), iri("name"), Literal("Tim")))
    s.add(Triple(iri("lee"), iri("advisor"), iri("ben")))
    return s


class TestMutation:
    def test_add_and_contains(self, store):
        assert Triple(iri("kim"), iri("advisor"), iri("tim")) in store
        assert Triple(iri("kim"), iri("advisor"), iri("ben")) not in store

    def test_duplicate_add_is_noop(self, store):
        before = len(store)
        assert not store.add(Triple(iri("kim"), iri("advisor"), iri("tim")))
        assert len(store) == before

    def test_remove(self, store):
        triple = Triple(iri("kim"), iri("advisor"), iri("tim"))
        assert store.remove(triple)
        assert triple not in store
        assert not store.remove(triple)
        assert store.predicate_count(iri("advisor")) == 1

    def test_add_all_returns_inserted_count(self):
        s = TripleStore()
        t = Triple(iri("a"), iri("p"), iri("b"))
        assert s.add_all([t, t, Triple(iri("a"), iri("p"), iri("c"))]) == 2


class TestMatch:
    def test_fully_unbound(self, store):
        assert len(list(store.match(
            TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        ))) == len(store)

    def test_predicate_bound(self, store):
        matches = list(store.match(
            TriplePattern(Variable("s"), iri("advisor"), Variable("o"))
        ))
        assert len(matches) == 2

    def test_subject_bound(self, store):
        matches = list(store.match(
            TriplePattern(iri("kim"), Variable("p"), Variable("o"))
        ))
        assert len(matches) == 2

    def test_object_bound(self, store):
        matches = list(store.match(
            TriplePattern(Variable("s"), Variable("p"), iri("c1"))
        ))
        assert len(matches) == 2

    def test_subject_object_bound(self, store):
        matches = list(store.match(
            TriplePattern(iri("kim"), Variable("p"), iri("c1"))
        ))
        assert [t.predicate for t in matches] == [iri("takesCourse")]

    def test_fully_ground(self, store):
        pattern = TriplePattern(iri("kim"), iri("advisor"), iri("tim"))
        assert len(list(store.match(pattern))) == 1

    def test_repeated_variable(self):
        s = TripleStore()
        s.add(Triple(iri("a"), iri("p"), iri("a")))
        s.add(Triple(iri("a"), iri("p"), iri("b")))
        pattern = TriplePattern(Variable("x"), iri("p"), Variable("x"))
        assert len(list(s.match(pattern))) == 1

    def test_no_match(self, store):
        pattern = TriplePattern(iri("ghost"), Variable("p"), Variable("o"))
        assert list(store.match(pattern)) == []


class TestCount:
    def test_count_matches_match(self, store):
        shapes = [
            TriplePattern(Variable("s"), Variable("p"), Variable("o")),
            TriplePattern(Variable("s"), iri("advisor"), Variable("o")),
            TriplePattern(iri("kim"), Variable("p"), Variable("o")),
            TriplePattern(Variable("s"), Variable("p"), iri("c1")),
            TriplePattern(iri("kim"), iri("advisor"), Variable("o")),
            TriplePattern(Variable("s"), iri("advisor"), iri("tim")),
            TriplePattern(iri("kim"), Variable("p"), iri("c1")),
            TriplePattern(iri("kim"), iri("advisor"), iri("tim")),
        ]
        for pattern in shapes:
            assert store.count(pattern) == len(list(store.match(pattern)))

    def test_count_repeated_variable(self):
        s = TripleStore()
        s.add(Triple(iri("a"), iri("p"), iri("a")))
        s.add(Triple(iri("a"), iri("p"), iri("b")))
        assert s.count(TriplePattern(Variable("x"), iri("p"), Variable("x"))) == 1


class TestStats:
    def test_predicate_counts(self, store):
        assert store.predicate_count(iri("advisor")) == 2
        assert store.predicate_count(iri("missing")) == 0
        assert store.predicates() == {
            iri("advisor"), iri("takesCourse"), iri("teacherOf"), iri("name")
        }

    def test_distinct_subjects_objects(self, store):
        assert store.distinct_subject_count(iri("advisor")) == 2
        assert store.distinct_object_count(iri("advisor")) == 2
        assert store.subjects(iri("advisor")) == {iri("kim"), iri("lee")}
        assert store.objects(iri("advisor")) == {iri("tim"), iri("ben")}


class TestSummaries:
    def test_void_description(self, store):
        void = VoidDescription.from_store(store)
        assert void.total_triples == len(store)
        assert void.predicate_stats[iri("advisor")].triples == 2
        assert void.predicate_stats[iri("advisor")].distinct_subjects == 2

    def test_void_classes(self):
        s = TripleStore()
        rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        s.add(Triple(iri("kim"), rdf_type, iri("Student")))
        s.add(Triple(iri("lee"), rdf_type, iri("Student")))
        void = VoidDescription.from_store(s)
        assert void.classes[iri("Student")] == 2

    def test_authority_summary(self, store):
        summary = AuthoritySummary.from_store(store)
        assert summary.subject_authorities[iri("advisor")] == {"http://ex"}
        # literal objects contribute no authorities
        assert summary.object_authorities[iri("name")] == frozenset()


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------

_terms = st.builds(lambda n: IRI(EX + n), st.text(alphabet="abc", min_size=1, max_size=3))
_triples = st.builds(Triple, _terms, _terms, _terms)


@settings(max_examples=100, deadline=None)
@given(st.lists(_triples, max_size=30))
def test_store_is_a_set(triples):
    store = TripleStore(triples)
    assert len(store) == len(set(triples))
    assert set(store.triples()) == set(triples)


@settings(max_examples=100, deadline=None)
@given(st.lists(_triples, min_size=1, max_size=30), st.data())
def test_remove_inverts_add(triples, data):
    store = TripleStore(triples)
    victim = data.draw(st.sampled_from(triples))
    store.remove(victim)
    assert victim not in store
    assert len(store) == len(set(triples)) - 1
    total = sum(store.predicate_count(p) for p in store.predicates())
    assert total == len(store)


@settings(max_examples=60, deadline=None)
@given(st.lists(_triples, max_size=30), _terms, _terms)
def test_count_agrees_with_match(triples, subject, predicate):
    store = TripleStore(triples)
    patterns = [
        TriplePattern(subject, Variable("p"), Variable("o")),
        TriplePattern(Variable("s"), predicate, Variable("o")),
        TriplePattern(subject, predicate, Variable("o")),
        TriplePattern(Variable("s"), predicate, subject),
    ]
    for pattern in patterns:
        assert store.count(pattern) == len(list(store.match(pattern)))
