"""Tests for federated keyword search (paper future work, implemented)."""

import pytest

from repro.core.keyword import keyword_search
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import Federation
from repro.rdf import parse as nt_parse

EP1 = """
<http://x/aspirin> <http://v/name> "Aspirin" .
<http://x/aspirin> <http://v/desc> "common pain relief tablet" .
<http://x/ibuprofen> <http://v/name> "Ibuprofen" .
"""
EP2 = """
<http://x/aspirin> <http://v/label> "acetylsalicylic acid tablet" .
<http://x/paracetamol> <http://v/desc> "pain and fever relief" .
"""


@pytest.fixture
def federation():
    return Federation(
        [
            LocalEndpoint.from_triples("ep1", nt_parse(EP1)),
            LocalEndpoint.from_triples("ep2", nt_parse(EP2)),
        ],
        network=LOCAL_CLUSTER,
    )


class TestKeywordSearch:
    def test_single_keyword_across_endpoints(self, federation):
        hits = keyword_search(federation, ["tablet"])
        entities = {hit.entity.value for hit in hits}
        assert entities == {"http://x/aspirin"}
        # witnesses come from both endpoints
        endpoints = {w[0] for w in hits[0].witnesses}
        assert endpoints == {"ep1", "ep2"}

    def test_multi_keyword_ranking(self, federation):
        hits = keyword_search(federation, ["pain", "tablet"])
        assert hits[0].entity.value == "http://x/aspirin"  # matches both
        assert hits[0].score == 2
        trailing = {hit.entity.value for hit in hits[1:]}
        assert "http://x/paracetamol" in trailing  # matches "pain" only

    def test_case_insensitive(self, federation):
        hits = keyword_search(federation, ["ASPIRIN"])
        assert hits and hits[0].entity.value == "http://x/aspirin"

    def test_no_match(self, federation):
        assert keyword_search(federation, ["nonexistentword"]) == []

    def test_limit(self, federation):
        hits = keyword_search(federation, ["i"], limit=1)  # matches many
        assert len(hits) == 1

    def test_empty_keywords_rejected(self, federation):
        with pytest.raises(ValueError):
            keyword_search(federation, ["  "])

    def test_requests_are_accounted(self, federation):
        context = federation.make_context()
        keyword_search(federation, ["pain"], context=context)
        # one probe per endpoint per keyword
        assert context.metrics.select_requests == 2
        assert context.metrics.virtual_seconds > 0
