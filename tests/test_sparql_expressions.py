"""Unit tests for FILTER expression evaluation."""

import pytest

from repro.rdf import IRI, Literal, Variable, XSD_BOOLEAN, XSD_INTEGER
from repro.sparql import parse_query
from repro.sparql.expressions import (
    ExpressionError,
    TermExpr,
)


def evaluate(expression_text, binding=None):
    """Parse a filter through the real parser and evaluate it."""
    query = parse_query(
        f"SELECT ?x WHERE {{ ?x <http://p> ?y . FILTER({expression_text}) }}"
    )
    expr = query.where.filters[0]
    return expr.effective_boolean(binding or {})


X, Y = Variable("x"), Variable("y")


class TestComparisons:
    def test_numeric_equality_across_datatypes(self):
        assert evaluate("?y = 5", {Y: Literal("5", datatype=XSD_INTEGER)})
        assert evaluate("?y = 5.0", {Y: Literal("5", datatype=XSD_INTEGER)})

    def test_numeric_ordering(self):
        assert evaluate("?y < 10", {Y: Literal.integer(5)})
        assert not evaluate("?y > 10", {Y: Literal.integer(5)})
        assert evaluate("?y >= 5", {Y: Literal.integer(5)})
        assert evaluate("?y <= 5", {Y: Literal.integer(5)})

    def test_string_ordering(self):
        assert evaluate('?y < "b"', {Y: Literal("a")})

    def test_iri_equality(self):
        assert evaluate("?y = <http://a>", {Y: IRI("http://a")})
        assert evaluate("?y != <http://b>", {Y: IRI("http://a")})

    def test_unbound_variable_is_error_hence_false(self):
        assert not evaluate("?z = 5", {Y: Literal.integer(5)})

    def test_type_mismatch_is_false(self):
        assert not evaluate("?y > 5", {Y: IRI("http://a")})


class TestLogical:
    def test_and_or_not(self):
        binding = {Y: Literal.integer(7)}
        assert evaluate("?y > 5 && ?y < 10", binding)
        assert evaluate("?y < 5 || ?y > 6", binding)
        assert evaluate("!(?y < 5)", binding)

    def test_error_tolerant_or(self):
        # left side errors (unbound), right side true -> true (SPARQL)
        assert evaluate("?z > 1 || ?y = 7", {Y: Literal.integer(7)})

    def test_error_tolerant_and(self):
        # left errors, right false -> false
        assert not evaluate("?z > 1 && ?y = 0", {Y: Literal.integer(7)})

    def test_in_and_not_in(self):
        binding = {Y: Literal.integer(2)}
        assert evaluate("?y IN (1, 2, 3)", binding)
        assert not evaluate("?y IN (4, 5)", binding)
        assert evaluate("?y NOT IN (4, 5)", binding)


class TestArithmetic:
    def test_basic_operations(self):
        binding = {Y: Literal.integer(6)}
        assert evaluate("?y + 1 = 7", binding)
        assert evaluate("?y - 1 = 5", binding)
        assert evaluate("?y * 2 = 12", binding)
        assert evaluate("?y / 2 = 3", binding)

    def test_division_by_zero_is_false(self):
        assert not evaluate("?y / 0 = 1", {Y: Literal.integer(6)})

    def test_unary_minus(self):
        assert evaluate("-?y = -6", {Y: Literal.integer(6)})


class TestStringFunctions:
    def test_str_of_iri(self):
        assert evaluate('STR(?y) = "http://a"', {Y: IRI("http://a")})

    def test_contains_starts_ends(self):
        binding = {Y: Literal("hello world")}
        assert evaluate('CONTAINS(?y, "lo wo")', binding)
        assert evaluate('STRSTARTS(?y, "hello")', binding)
        assert evaluate('STRENDS(?y, "world")', binding)
        assert not evaluate('STRSTARTS(?y, "world")', binding)

    def test_case_functions(self):
        binding = {Y: Literal("MiXeD")}
        assert evaluate('LCASE(?y) = "mixed"', binding)
        assert evaluate('UCASE(?y) = "MIXED"', binding)

    def test_strlen(self):
        assert evaluate("STRLEN(?y) = 3", {Y: Literal("abc")})

    def test_regex_flags(self):
        binding = {Y: Literal("Hello")}
        assert evaluate('REGEX(?y, "^h", "i")', binding)
        assert not evaluate('REGEX(?y, "^h")', binding)

    def test_bad_regex_is_false(self):
        assert not evaluate('REGEX(?y, "[")', {Y: Literal("x")})

    def test_lang_and_datatype(self):
        assert evaluate('LANG(?y) = "en"', {Y: Literal("hi", language="en")})
        assert evaluate('LANG(?y) = ""', {Y: Literal("hi")})
        assert evaluate(
            "DATATYPE(?y) = <http://www.w3.org/2001/XMLSchema#integer>",
            {Y: Literal.integer(3)},
        )


class TestTermPredicates:
    def test_isiri_isliteral(self):
        assert evaluate("ISIRI(?y)", {Y: IRI("http://a")})
        assert not evaluate("ISIRI(?y)", {Y: Literal("a")})
        assert evaluate("ISLITERAL(?y)", {Y: Literal("a")})

    def test_bound(self):
        assert evaluate("BOUND(?y)", {Y: Literal("a")})
        assert not evaluate("BOUND(?z)", {Y: Literal("a")})

    def test_sameterm(self):
        assert evaluate("SAMETERM(?y, ?y)", {Y: Literal("a")})
        assert not evaluate('SAMETERM(?y, "b")', {Y: Literal("a")})


class TestConditionals:
    def test_if(self):
        assert evaluate('IF(?y > 5, "big", "small") = "big"',
                        {Y: Literal.integer(9)})
        assert evaluate('IF(?y > 5, "big", "small") = "small"',
                        {Y: Literal.integer(1)})

    def test_coalesce_skips_errors(self):
        # ?z unbound errors; falls through to ?y
        assert evaluate("COALESCE(?z, ?y) = 7", {Y: Literal.integer(7)})


class TestEffectiveBooleanValue:
    def test_boolean_literal(self):
        assert evaluate("?y", {Y: Literal("true", datatype=XSD_BOOLEAN)})
        assert not evaluate("?y", {Y: Literal("false", datatype=XSD_BOOLEAN)})

    def test_numeric_ebv(self):
        assert evaluate("?y", {Y: Literal.integer(1)})
        assert not evaluate("?y", {Y: Literal.integer(0)})

    def test_string_ebv(self):
        assert evaluate("?y", {Y: Literal("x")})
        assert not evaluate("?y", {Y: Literal("")})

    def test_iri_has_no_ebv(self):
        assert not evaluate("?y", {Y: IRI("http://a")})


class TestTermExprDirect:
    def test_unbound_raises(self):
        with pytest.raises(ExpressionError):
            TermExpr(Variable("z")).evaluate({})

    def test_constant_evaluates_to_itself(self):
        lit = Literal("k")
        assert TermExpr(lit).evaluate({}) == lit

    def test_variables_footprint(self):
        assert TermExpr(Variable("z")).variables() == {Variable("z")}
        assert TermExpr(Literal("k")).variables() == frozenset()
