"""Tests for federation dump/load round-tripping."""

import pytest

from repro.core import LusailEngine
from repro.datasets import LubmGenerator, dump_federation, load_federation
from repro.datasets.lubm import LUBM_QUERIES
from repro.endpoint import Region

from .conftest import result_values


class TestDumpLoad:
    def test_round_trip_preserves_data(self, tmp_path):
        federation = LubmGenerator(universities=2).build_federation()
        written = dump_federation(federation, tmp_path)
        assert set(written) == {"university0", "university1"}
        for path in written.values():
            assert path.exists() and path.stat().st_size > 0

        reloaded = load_federation(tmp_path)
        assert sorted(reloaded.endpoint_ids) == sorted(federation.endpoint_ids)
        for endpoint_id in federation.endpoint_ids:
            original = set(federation.endpoint(endpoint_id).store.triples())
            restored = set(reloaded.endpoint(endpoint_id).store.triples())
            assert original == restored

    def test_round_trip_preserves_query_answers(self, tmp_path):
        federation = LubmGenerator(universities=2).build_federation()
        dump_federation(federation, tmp_path)
        reloaded = load_federation(tmp_path)
        original = LusailEngine(federation).execute(LUBM_QUERIES["Q4"])
        restored = LusailEngine(reloaded).execute(LUBM_QUERIES["Q4"])
        assert original.status == restored.status == "OK"
        assert result_values(original.result) == result_values(restored.result)

    def test_load_assigns_regions(self, tmp_path):
        federation = LubmGenerator(universities=2).build_federation()
        dump_federation(federation, tmp_path)
        reloaded = load_federation(
            tmp_path, regions={"university0": Region("east-us")}
        )
        assert reloaded.endpoint("university0").region == Region("east-us")
        assert reloaded.endpoint("university1").region == Region("local")

    def test_load_empty_directory_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_federation(tmp_path)
