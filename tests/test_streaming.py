"""Streaming adaptive execution: pipelined joins, partial dispatch,
time-to-first-result, and the materialized ablation.

The invariants under test:

- the streaming executor returns exactly the materialized answer on the
  paper's running example and on the delayed-subquery directory
  workload — differentially, under Hypothesis-chosen engine knobs;
- ``streaming=False`` is a true ablation: rows, row *order*, and the
  virtual clock are bit-identical to the materialized path, and the
  handle reports ``streamed=False`` with ``ttfb == makespan``;
- non-streamable query shapes (ORDER BY, aggregates, ...) fall back to
  the materialized path through the same API;
- time-to-first-result beats the makespan on the delayed-subquery
  workload, with incremental VALUES dispatch observable in the metrics;
- under injected transient faults the streamed answer still matches
  the materialized one; under outages with ``partial_results=True`` and
  under deadlines, the streamed answer is a subset of the fault-free
  full answer (partial ⊆ full);
- :class:`SymmetricHashJoin` emits exactly ``hash_join``'s rows under
  any batch interleaving, and ``preload_left`` carries rows without
  probing;
- the runtime monitor's replanning reorders only the unstarted suffix
  of the join chain, carries the accumulated left input, counts
  ``Metrics.replans``, and renders a ``replan`` trace line;
- ``ElasticRequestHandler.submit(at=...)`` backdates (and clamps) the
  submission instant on the virtual timeline;
- threaded and simulated handler modes stream identical batches and
  identical clocks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from .conftest import (
    EP1_TRIPLES,
    EP2_TRIPLES,
    QA_EXPECTED,
    QUERY_QA,
    build_paper_federation,
    result_values,
)
from repro.bench.federation_bench import (
    DIRECTORY_QUERY,
    build_directory_federation,
)
from repro.core import LusailEngine
from repro.core.joins import SymmetricHashJoin, hash_join
from repro.core.streaming import (
    REPLAN_DIVERGENCE,
    _RelationState,
    _StreamingRun,
    is_streamable,
)
from repro.core.trace import QueryTrace, render_trace
from repro.endpoint import (
    FaultProfile,
    LOCAL_CLUSTER,
    LocalEndpoint,
    OutageWindow,
)
from repro.federation import Federation
from repro.federation.request_handler import ElasticRequestHandler, Request
from repro.rdf import IRI, Variable
from repro.rdf import parse as nt_parse
from repro.sparql.results import ResultSet

#: the directory workload shrunk for unit tests (the bench uses the
#: full-size registries; correctness does not depend on the noise)
_SMALL_DIRECTORY = dict(noise_addresses=120, noise_emails=150)

#: engine knobs that make the directory workload exercise incremental
#: VALUES dispatch (mirrors the federation bench's streaming scenario)
_DIRECTORY_KNOBS = dict(
    pool_size=32, delay_threshold="mu", values_block_size=2
)


def _directory_federation(universities=2, students=2):
    return build_directory_federation(
        universities=universities,
        students_per_university=students,
        **_SMALL_DIRECTORY,
    )


def _stream_rows(engine, query, **kwargs):
    """(handle, final QueryResult) after draining the stream."""
    handle = engine.execute_streaming(query, **kwargs)
    outcome = handle.drain()
    return handle, outcome


# ----------------------------------------------------------------------
# Differential: streaming vs materialized
# ----------------------------------------------------------------------


class TestStreamingMatchesMaterialized:
    def test_paper_query(self):
        materialized = LusailEngine(build_paper_federation()).execute(
            QUERY_QA
        )
        handle, outcome = _stream_rows(
            LusailEngine(build_paper_federation()), QUERY_QA
        )
        assert handle.streamed
        assert outcome.status == "OK"
        assert result_values(outcome.result) == QA_EXPECTED
        assert result_values(outcome.result) == result_values(
            materialized.result
        )

    def test_batches_union_to_the_final_result(self):
        engine = LusailEngine(build_paper_federation())
        handle = engine.execute_streaming(QUERY_QA)
        rows = []
        for batch in handle.batches():
            assert batch.variables == handle.variables
            rows.extend(batch.rows)
        outcome = handle.result
        assert outcome.status == "OK"
        assert rows == list(outcome.result.rows)
        assert len(rows) == len(set(rows)), "batches must not repeat rows"

    def test_directory_workload_streams_early(self):
        materialized = LusailEngine(
            _directory_federation(), **_DIRECTORY_KNOBS
        ).execute(DIRECTORY_QUERY)
        engine = LusailEngine(_directory_federation(), **_DIRECTORY_KNOBS)
        handle, outcome = _stream_rows(engine, DIRECTORY_QUERY)
        assert handle.streamed
        assert outcome.status == "OK"
        assert result_values(outcome.result) == result_values(
            materialized.result
        )
        metrics = outcome.metrics
        assert metrics.batches_routed > 0
        assert metrics.values_dispatches_partial >= 1
        assert 0.0 < metrics.ttfb_seconds < metrics.virtual_seconds
        assert handle.ttfb_seconds == metrics.ttfb_seconds

    def test_trace_records_first_result(self):
        engine = LusailEngine(build_paper_federation())
        handle, outcome = _stream_rows(engine, QUERY_QA, trace=True)
        events = outcome.trace.of_kind("stream_first_result")
        assert len(events) == 1
        assert events[0].detail["ttfb_seconds"] == pytest.approx(
            outcome.metrics.ttfb_seconds
        )
        rendered = render_trace(outcome.trace)
        assert "first result batch" in rendered

    @settings(max_examples=8, deadline=None)
    @given(
        universities=st.integers(min_value=1, max_value=3),
        students=st.integers(min_value=1, max_value=2),
        values_block_size=st.integers(min_value=1, max_value=4),
        delay_threshold=st.sampled_from(["mu", "mu+sigma"]),
    )
    def test_differential_under_knobs(
        self, universities, students, values_block_size, delay_threshold
    ):
        knobs = dict(
            pool_size=16,
            delay_threshold=delay_threshold,
            values_block_size=values_block_size,
        )
        materialized = LusailEngine(
            _directory_federation(universities, students), **knobs
        ).execute(DIRECTORY_QUERY)
        handle, outcome = _stream_rows(
            LusailEngine(
                _directory_federation(universities, students), **knobs
            ),
            DIRECTORY_QUERY,
        )
        assert outcome.status == materialized.status == "OK"
        assert result_values(outcome.result) == result_values(
            materialized.result
        )


# ----------------------------------------------------------------------
# The ablation knob and the fallback path
# ----------------------------------------------------------------------


class TestAblationAndFallback:
    def test_streaming_false_is_bit_identical(self):
        reference = LusailEngine(
            _directory_federation(), **_DIRECTORY_KNOBS
        ).execute(DIRECTORY_QUERY)
        engine = LusailEngine(
            _directory_federation(), streaming=False, **_DIRECTORY_KNOBS
        )
        handle, outcome = _stream_rows(engine, DIRECTORY_QUERY)
        assert not handle.streamed
        assert outcome.status == reference.status
        assert outcome.result.variables == reference.result.variables
        # bit-identical: same rows in the same order, same virtual clock
        assert list(outcome.result.rows) == list(reference.result.rows)
        assert outcome.metrics.virtual_seconds == pytest.approx(
            reference.metrics.virtual_seconds
        )
        # a materialized run's first result is its last: ttfb == makespan
        assert outcome.metrics.ttfb_seconds == pytest.approx(
            outcome.metrics.virtual_seconds
        )

    def test_order_by_falls_back(self):
        engine = LusailEngine(build_paper_federation())
        query = QUERY_QA.rstrip() + "\nORDER BY ?S"
        handle, outcome = _stream_rows(engine, query)
        assert not handle.streamed
        assert outcome.status == "OK"
        assert result_values(outcome.result) == QA_EXPECTED

    def test_is_streamable_rejects_modifiers(self):
        from repro.sparql.parser import parse_query

        assert is_streamable(parse_query(QUERY_QA))
        for suffix in ("ORDER BY ?S", "LIMIT 2", "OFFSET 1"):
            text = QUERY_QA.rstrip() + "\n" + suffix
            assert not is_streamable(parse_query(text)), suffix
        ask = 'ASK { ?s ?p ?o . }'
        assert not is_streamable(parse_query(ask))


# ----------------------------------------------------------------------
# Faults and deadlines: partial ⊆ full
# ----------------------------------------------------------------------


def _faulty_paper_federation(ep1_profile=None, ep2_profile=None):
    return Federation(
        [
            LocalEndpoint.from_triples(
                "ep1", nt_parse(EP1_TRIPLES), faults=ep1_profile
            ),
            LocalEndpoint.from_triples(
                "ep2", nt_parse(EP2_TRIPLES), faults=ep2_profile
            ),
        ],
        network=LOCAL_CLUSTER,
    )


class TestFaultsAndDeadlines:
    @settings(max_examples=6, deadline=None)
    @given(
        rate=st.sampled_from([0.2, 0.4]),
        seed=st.integers(min_value=1, max_value=50),
    )
    def test_transient_faults_do_not_change_the_answer(self, rate, seed):
        # Differential under injected faults: some seeds exhaust even 6
        # retries — then BOTH paths must fail the same way; when the
        # retries absorb the faults, both must produce the full answer.
        profile = FaultProfile(failure_rate=rate, seed=seed)
        materialized = LusailEngine(
            _faulty_paper_federation(ep2_profile=profile), max_retries=6
        ).execute(QUERY_QA)
        handle, outcome = _stream_rows(
            LusailEngine(
                _faulty_paper_federation(ep2_profile=profile), max_retries=6
            ),
            QUERY_QA,
        )
        assert handle.streamed
        assert outcome.status == materialized.status
        if outcome.status == "OK":
            assert result_values(outcome.result) == QA_EXPECTED
        else:
            assert handle.truncated
            assert outcome.error == materialized.error

    def test_latency_spikes_do_not_change_the_answer(self):
        profile = FaultProfile(
            latency_spike_rate=1.0, latency_spike_seconds=0.5
        )
        handle, outcome = _stream_rows(
            LusailEngine(_faulty_paper_federation(ep1_profile=profile)),
            QUERY_QA,
        )
        assert outcome.status == "OK"
        assert result_values(outcome.result) == QA_EXPECTED

    def test_outage_with_partial_results_is_a_subset(self):
        profile = FaultProfile(
            outage_windows=(OutageWindow(start=0, end=10_000),)
        )
        engine = LusailEngine(
            _faulty_paper_federation(ep2_profile=profile),
            partial_results=True,
            max_retries=1,
            breaker=False,
        )
        handle, outcome = _stream_rows(engine, QUERY_QA)
        assert outcome.status == "PARTIAL"
        assert result_values(outcome.result) <= QA_EXPECTED
        assert not outcome.completeness.complete

    @settings(max_examples=6, deadline=None)
    @given(deadline=st.sampled_from([0.05, 0.2, 0.5, 1.0, 3.0]))
    def test_deadline_yields_a_subset(self, deadline):
        full = LusailEngine(
            _directory_federation(), **_DIRECTORY_KNOBS
        ).execute(DIRECTORY_QUERY)
        assert full.status == "OK"
        engine = LusailEngine(_directory_federation(), **_DIRECTORY_KNOBS)
        handle, outcome = _stream_rows(
            engine, DIRECTORY_QUERY, deadline_seconds=deadline
        )
        assert outcome.status in ("OK", "PARTIAL")
        assert outcome.result is not None
        assert result_values(outcome.result) <= result_values(full.result)
        if outcome.status == "OK":
            assert result_values(outcome.result) == result_values(
                full.result
            )

    def test_closing_the_stream_early_is_partial(self):
        engine = LusailEngine(_directory_federation(), **_DIRECTORY_KNOBS)
        handle = engine.execute_streaming(DIRECTORY_QUERY)
        batches = handle.batches()
        first = next(batches)
        assert len(first.rows) > 0
        handle.close()
        assert handle.truncated
        assert handle.result.status == "PARTIAL"
        assert set(handle.result.result.rows) >= set(first.rows)


# ----------------------------------------------------------------------
# The symmetric hash join operator
# ----------------------------------------------------------------------

_X, _Y, _Z = Variable("x"), Variable("y"), Variable("z")


def _iri_rows(pairs):
    return [tuple(IRI(f"http://x/{part}") for part in row) for row in pairs]


@st.composite
def _join_inputs(draw):
    keys = st.integers(min_value=0, max_value=5)
    left = draw(
        st.lists(st.tuples(keys, keys), min_size=0, max_size=12)
    )
    right = draw(
        st.lists(st.tuples(keys, keys), min_size=0, max_size=12)
    )
    # batch split points plus which side delivers each batch first
    order = draw(st.lists(st.booleans(), min_size=4, max_size=4))
    return left, right, order


class TestSymmetricHashJoin:
    @settings(max_examples=60, deadline=None)
    @given(_join_inputs())
    def test_any_interleaving_equals_hash_join(self, inputs):
        from collections import Counter

        left_pairs, right_pairs, order = inputs
        left = ResultSet(
            (_X, _Y), _iri_rows([(f"k{a}", f"l{b}") for a, b in left_pairs])
        )
        right = ResultSet(
            (_Y, _Z), _iri_rows([(f"l{a}", f"r{b}") for a, b in right_pairs])
        )
        want = Counter(hash_join(left, right).rows)

        join = SymmetricHashJoin((_X, _Y), (_Y, _Z))
        got = []
        half_l, half_r = len(left.rows) // 2, len(right.rows) // 2
        batches = [
            ("L", left.rows[:half_l]),
            ("R", right.rows[:half_r]),
            ("L", left.rows[half_l:]),
            ("R", right.rows[half_r:]),
        ]
        # Hypothesis-chosen interleaving: flip adjacent deliveries
        for index, flip in enumerate(order[: len(batches) - 1]):
            if flip:
                batches[index], batches[index + 1] = (
                    batches[index + 1], batches[index],
                )
        for side, rows in batches:
            if side == "L":
                got.extend(join.push_left(rows))
            else:
                got.extend(join.push_right(rows))
        # multiset equality: duplicate input rows join to duplicate
        # outputs on both operators, never to extra or missing ones
        assert Counter(got) == want
        assert join.held_rows == len(left.rows) + len(right.rows)

    def test_preload_left_does_not_probe(self):
        join = SymmetricHashJoin((_X, _Y), (_Y, _Z))
        join.preload_left(_iri_rows([("a", "k"), ("b", "k")]))
        assert join.left_count == 2
        out = join.push_right(_iri_rows([("k", "c")]))
        assert len(out) == 2

    def test_preload_requires_empty_right(self):
        join = SymmetricHashJoin((_X, _Y), (_Y, _Z))
        join.push_right(_iri_rows([("k", "c")]))
        with pytest.raises(Exception):
            join.preload_left(_iri_rows([("a", "k")]))


# ----------------------------------------------------------------------
# The runtime monitor: replanning the unstarted suffix
# ----------------------------------------------------------------------


def _synthetic_run(context):
    """A mid-flight four-relation chain A >< B >< C >< D where A just
    finished wildly over estimate and C, D have not routed anything."""
    a, b, c, d = Variable("a"), Variable("b"), Variable("c"), Variable("d")
    headers = {
        "A": (a, b), "B": (b, c), "C": (c, Variable("e")),
        "D": (c, Variable("f")),
    }
    run = object.__new__(_StreamingRun)
    run.context = context
    run.metrics = context.metrics
    run.order = ["A", "B", "C", "D"]
    run.positions = {name: i for i, name in enumerate(run.order)}
    run.by_name = {}
    for name, header in headers.items():
        state = _RelationState(name, header)
        run.by_name[name] = state
    run.by_name["A"].planned_size = 10
    run.by_name["A"].observed = int(10 * REPLAN_DIVERGENCE)
    run.by_name["A"].eos_done = True
    run.by_name["A"].routed_rows = 40
    run.by_name["B"].planned_size = 20
    run.by_name["B"].routed_rows = 12
    run.by_name["C"].planned_size = 50
    run.by_name["D"].planned_size = 5
    stage0 = SymmetricHashJoin(headers["A"], headers["B"], context)
    stage1 = SymmetricHashJoin(stage0.header, headers["C"], context)
    stage2 = SymmetricHashJoin(stage1.header, headers["D"], context)
    run.stages = [stage0, stage1, stage2]
    return run


class TestReplanning:
    def test_reorders_suffix_and_carries_left_input(self):
        federation = build_paper_federation()
        context = federation.make_context()
        context.trace = QueryTrace()
        run = _synthetic_run(context)
        carried = _iri_rows([("p", "q", "r")])
        run.stages[1].preload_left(carried)

        run._maybe_replan(run.by_name["A"])

        assert run.order == ["A", "B", "D", "C"]
        assert run.positions["D"] == 2
        assert context.metrics.replans == 1
        # rebuilt stage 1 now joins (A><B) with D and carries the left
        assert run.stages[1].left_count == 1
        assert Variable("f") in run.stages[1].header
        assert Variable("e") in run.stages[2].header
        events = context.trace.of_kind("replan")
        assert len(events) == 1
        assert events[0].detail["old_suffix"] == ["C", "D"]
        assert events[0].detail["new_suffix"] == ["D", "C"]
        rendered = render_trace(context.trace)
        assert "C >< D -> D >< C" in rendered

    def test_no_replan_below_divergence(self):
        federation = build_paper_federation()
        context = federation.make_context()
        run = _synthetic_run(context)
        run.by_name["A"].observed = int(
            10 * REPLAN_DIVERGENCE
        ) - 1  # just under the 4x trigger
        run._maybe_replan(run.by_name["A"])
        assert run.order == ["A", "B", "C", "D"]
        assert context.metrics.replans == 0

    def test_no_replan_once_suffix_has_routed(self):
        federation = build_paper_federation()
        context = federation.make_context()
        run = _synthetic_run(context)
        run.by_name["C"].routed_rows = 1
        run.by_name["D"].routed_rows = 1
        run._maybe_replan(run.by_name["A"])
        assert run.order == ["A", "B", "C", "D"]
        assert context.metrics.replans == 0

    def test_no_replan_when_already_best_ordered(self):
        federation = build_paper_federation()
        context = federation.make_context()
        run = _synthetic_run(context)
        run.by_name["C"].planned_size = 5
        run.by_name["D"].planned_size = 50
        run._maybe_replan(run.by_name["A"])
        assert run.order == ["A", "B", "C", "D"]
        assert context.metrics.replans == 0


# ----------------------------------------------------------------------
# Backdated submission on the virtual timeline
# ----------------------------------------------------------------------

_ASK = (
    'ASK { <http://mit.edu/Lee> '
    '<http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor> ?o . }'
)


class TestBackdatedSubmit:
    def _handler(self):
        federation = build_paper_federation()
        context = federation.make_context()
        return ElasticRequestHandler(federation, context), context

    def test_backdating_starts_the_lane_earlier(self):
        # Two identical runs: advance the clock on ep2, then ask ep1
        # (whose lane is still idle) either live or backdated to t=0.
        finishes = {}
        for backdate in (False, True):
            handler, context = self._handler()
            with handler:
                warm = handler.submit(Request("ep2", _ASK, kind="ASK"))
                handler.settle(warm)
                now = context.metrics.virtual_seconds
                assert now > 0.0
                probe = handler.submit(
                    Request("ep1", _ASK, kind="ASK"),
                    at=0.0 if backdate else None,
                )
                handler.settle(probe)
                finishes[backdate] = probe._finish
        assert finishes[True] < finishes[False]

    def test_backdating_clamps_to_now(self):
        handler, context = self._handler()
        with handler:
            first = handler.submit(Request("ep1", _ASK, kind="ASK"))
            handler.settle(first)
            now = context.metrics.virtual_seconds
            future_dated = handler.submit(
                Request("ep1", _ASK, kind="ASK"), at=now + 1e9
            )
            handler.settle(future_dated)
            assert future_dated._finish <= now + 10.0
            negative = handler.submit(
                Request("ep1", _ASK, kind="ASK"), at=-5.0
            )
            handler.settle(negative)
            assert negative._finish >= 0.0


# ----------------------------------------------------------------------
# Determinism: threaded == simulated
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_threaded_stream_matches_simulated(self):
        runs = {}
        for use_threads in (False, True):
            engine = LusailEngine(
                _directory_federation(),
                use_threads=use_threads,
                **_DIRECTORY_KNOBS,
            )
            handle = engine.execute_streaming(DIRECTORY_QUERY)
            batches = [list(batch.rows) for batch in handle.batches()]
            outcome = handle.result
            assert outcome.status == "OK"
            runs[use_threads] = (
                batches,
                outcome.metrics.virtual_seconds,
                outcome.metrics.ttfb_seconds,
            )
        assert runs[False] == runs[True]
