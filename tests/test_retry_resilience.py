"""Tests for transient-failure retries in the request handler and for
engine behaviour on flaky federations."""

import pytest

from repro.core import LusailEngine
from repro.endpoint import (
    EndpointUnavailableError,
    LOCAL_CLUSTER,
    LocalEndpoint,
)
from repro.federation import ElasticRequestHandler, Federation, Request
from repro.rdf import parse as nt_parse

from .conftest import (
    EP1_TRIPLES,
    EP2_TRIPLES,
    QA_EXPECTED,
    QUERY_QA,
    result_values,
)


def flaky_federation(failure_rate, seed=3):
    return Federation(
        [
            LocalEndpoint.from_triples(
                "ep1", nt_parse(EP1_TRIPLES),
                failure_rate=failure_rate, failure_seed=seed,
            ),
            LocalEndpoint.from_triples(
                "ep2", nt_parse(EP2_TRIPLES),
                failure_rate=failure_rate, failure_seed=seed,
            ),
        ],
        network=LOCAL_CLUSTER,
    )


class TestHandlerRetries:
    def test_retry_succeeds_and_charges_penalty(self):
        federation = flaky_federation(0.4)
        steady = flaky_federation(0.0)
        # run the same request sequence; the flaky one must cost more
        def total_cost(fed):
            ctx = fed.make_context()
            handler = ElasticRequestHandler(fed, ctx, max_retries=10)
            for _ in range(20):
                handler.ask("ep1", "ASK { ?s ?p ?o }")
            return ctx.metrics.virtual_seconds

        assert total_cost(federation) > total_cost(steady)

    def test_retries_exhausted_raises(self):
        federation = flaky_federation(0.95, seed=5)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx, max_retries=1)
        with pytest.raises(EndpointUnavailableError):
            for _ in range(50):
                handler.execute(Request("ep1", "ASK { ?s ?p ?o }", "ASK"))

    def test_zero_retries_configuration(self):
        federation = flaky_federation(0.5, seed=11)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx, max_retries=0)
        with pytest.raises(EndpointUnavailableError):
            for _ in range(50):
                handler.execute(Request("ep1", "ASK { ?s ?p ?o }", "ASK"))


class TestEngineOnFlakyFederation:
    def test_lusail_answers_through_transient_failures(self):
        federation = flaky_federation(0.15)
        engine = LusailEngine(federation, max_retries=10)
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == QA_EXPECTED

    def test_flaky_run_costs_more_than_steady(self):
        flaky = LusailEngine(flaky_federation(0.2), max_retries=10).execute(QUERY_QA)
        steady = LusailEngine(flaky_federation(0.0), max_retries=10).execute(QUERY_QA)
        assert flaky.status == steady.status == "OK"
        assert flaky.runtime_seconds > steady.runtime_seconds

    def test_hopeless_endpoint_surfaces_re(self):
        federation = flaky_federation(0.99, seed=13)
        engine = LusailEngine(federation)
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "RE"
        assert "did not answer" in (outcome.error or "")
