"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3  # the deliverable: at least three


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should narrate what they do"
