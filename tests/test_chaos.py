"""Wire-level chaos: every injected byte-level fault must surface as a
typed outcome — bit-identical results, an honest PARTIAL, or a typed
error.  Never a hang past the deadline, never a silently wrong or empty
result set.
"""

import time

import pytest

from .conftest import EP1_TRIPLES, EP2_TRIPLES, QA_EXPECTED, QUERY_QA
from repro.core import LusailEngine
from repro.endpoint import (
    ChaosProfile,
    ChaosProxy,
    EndpointConnectionError,
    EndpointProtocolError,
    EndpointThrottledError,
    EndpointUnavailableError,
    RemoteEndpoint,
)
from repro.federation import Federation
from repro.serving import QuerySessionManager, start_server

from .test_remote_endpoint import member_engine, row_values

UB = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
LIST_QUERY = f"SELECT ?s ?o WHERE {{ ?s <{UB}advisor> ?o }}"


def boot_member(endpoint_id="ep1", triples=EP1_TRIPLES):
    manager = QuerySessionManager(
        member_engine(endpoint_id, triples), tenants=(), max_concurrent=8
    )
    return start_server(manager)[0]


def make_remote(proxy, **kwargs):
    kwargs.setdefault("connect_timeout", 1.0)
    kwargs.setdefault("request_timeout", 2.0)
    return RemoteEndpoint(proxy.url, endpoint_id="ep1", **kwargs)


class TestDeterminism:
    def test_same_seed_same_fault_schedule(self):
        profile = ChaosProfile(seed=7, reset_rate=0.3, truncate_rate=0.3)
        first = [profile.fault_for_connection(n)[0] for n in range(50)]
        second = [profile.fault_for_connection(n)[0] for n in range(50)]
        assert first == second
        assert set(first) > {None}  # some faults actually fire

    def test_different_seed_different_schedule(self):
        a = ChaosProfile(seed=1, reset_rate=0.5)
        b = ChaosProfile(seed=2, reset_rate=0.5)
        schedule_a = [a.fault_for_connection(n)[0] for n in range(64)]
        schedule_b = [b.fault_for_connection(n)[0] for n in range(64)]
        assert schedule_a != schedule_b

    def test_fixed_evaluation_order_first_hit_wins(self):
        profile = ChaosProfile(seed=0, storm_rate=1.0, reset_rate=1.0)
        for n in range(10):
            assert profile.fault_for_connection(n)[0] == "storm"


class TestFaultInjection:
    def test_quiet_profile_is_transparent(self):
        server = boot_member()
        proxy = ChaosProxy(*server.server_address[:2], ChaosProfile.quiet())
        try:
            remote = make_remote(proxy)
            direct = RemoteEndpoint(server.url, endpoint_id="ep1")
            through = remote.execute(LIST_QUERY)
            straight = direct.execute(LIST_QUERY)
            assert row_values(through.value) == row_values(straight.value)
            assert proxy.stats()["passthrough"] >= 1
            assert proxy.stats()["reset"] == 0
            remote.close()
            direct.close()
        finally:
            proxy.close()
            server.shutdown()
            server.server_close()

    def test_reset_surfaces_as_typed_connection_error(self):
        server = boot_member()
        proxy = ChaosProxy(
            *server.server_address[:2],
            ChaosProfile(seed=3, reset_rate=1.0, reset_after_bytes=64),
        )
        try:
            remote = make_remote(proxy)
            with pytest.raises(EndpointConnectionError) as info:
                remote.execute(LIST_QUERY)
            # mid-body RST: classified as reset or as a short read,
            # depending on how much the kernel delivered first
            assert info.value.kind in ("reset", "half-close")
            remote.close()
        finally:
            proxy.close()
            server.shutdown()
            server.server_close()

    def test_truncated_body_never_decodes_as_empty(self):
        server = boot_member()
        proxy = ChaosProxy(
            *server.server_address[:2],
            ChaosProfile(seed=4, truncate_rate=1.0, truncate_after_bytes=80),
        )
        try:
            remote = make_remote(proxy)
            with pytest.raises(
                (EndpointConnectionError, EndpointProtocolError)
            ):
                remote.execute(LIST_QUERY)
            remote.close()
        finally:
            proxy.close()
            server.shutdown()
            server.server_close()

    def test_stall_respects_wall_clock_budget(self):
        server = boot_member()
        proxy = ChaosProxy(
            *server.server_address[:2],
            ChaosProfile(
                seed=5, stall_rate=1.0, stall_after_bytes=16,
                stall_seconds=30.0,
            ),
        )
        try:
            remote = make_remote(proxy, request_timeout=1.0)
            started = time.monotonic()
            with pytest.raises(EndpointConnectionError) as info:
                remote.execute(LIST_QUERY)
            elapsed = time.monotonic() - started
            assert info.value.kind in ("slow-loris", "timeout")
            assert elapsed < 5.0  # never waits out the 30s stall
            remote.close()
        finally:
            proxy.close()
            server.shutdown()
            server.server_close()

    def test_garbage_body_is_a_protocol_error(self):
        server = boot_member()
        proxy = ChaosProxy(
            *server.server_address[:2],
            ChaosProfile(seed=6, garbage_rate=1.0),
        )
        try:
            remote = make_remote(proxy)
            with pytest.raises(
                (EndpointProtocolError, EndpointConnectionError)
            ):
                remote.execute(LIST_QUERY)
            remote.close()
        finally:
            proxy.close()
            server.shutdown()
            server.server_close()

    def test_duplicated_chunks_are_a_protocol_error(self):
        server = boot_member()
        proxy = ChaosProxy(
            *server.server_address[:2],
            ChaosProfile(seed=7, duplicate_rate=1.0),
        )
        try:
            remote = make_remote(proxy)
            with pytest.raises(
                (EndpointProtocolError, EndpointConnectionError)
            ):
                remote.execute(LIST_QUERY)
            remote.close()
        finally:
            proxy.close()
            server.shutdown()
            server.server_close()

    def test_storm_answers_throttle_without_touching_upstream(self):
        server = boot_member()
        proxy = ChaosProxy(
            *server.server_address[:2],
            ChaosProfile(seed=8, storm_rate=1.0, storm_retry_after=0.25),
        )
        try:
            remote = make_remote(proxy)
            with pytest.raises(EndpointThrottledError) as info:
                remote.execute(LIST_QUERY)
            assert info.value.http_status == 503
            assert info.value.retry_after == pytest.approx(0.25)
            remote.close()
        finally:
            proxy.close()
            server.shutdown()
            server.server_close()

    def test_429_storm_variant(self):
        server = boot_member()
        proxy = ChaosProxy(
            *server.server_address[:2],
            ChaosProfile(seed=9, storm_rate=1.0, storm_status=429),
        )
        try:
            remote = make_remote(proxy)
            with pytest.raises(EndpointThrottledError) as info:
                remote.execute(LIST_QUERY)
            assert info.value.http_status == 429
            remote.close()
        finally:
            proxy.close()
            server.shutdown()
            server.server_close()


class TestChaosFederation:
    """The typed-outcome invariant under a seeded fault storm."""

    @staticmethod
    def _federate_through(profiles):
        servers, proxies, remotes = [], [], []
        for index, (endpoint_id, triples) in enumerate(
            (("ep1", EP1_TRIPLES), ("ep2", EP2_TRIPLES))
        ):
            server = boot_member(endpoint_id, triples)
            proxy = ChaosProxy(*server.server_address[:2], profiles[index])
            remote = RemoteEndpoint(
                proxy.url, endpoint_id=endpoint_id,
                connect_timeout=1.0, request_timeout=3.0,
            )
            servers.append(server)
            proxies.append(proxy)
            remotes.append(remote)
        return servers, proxies, remotes

    @staticmethod
    def _teardown(servers, proxies, remotes):
        for remote in remotes:
            remote.close()
        for proxy in proxies:
            proxy.close()
        for server in servers:
            server.shutdown()
            server.server_close()

    def test_fault_free_control_is_bit_identical(self):
        servers, proxies, remotes = self._federate_through(
            [ChaosProfile.quiet(), ChaosProfile.quiet()]
        )
        try:
            engine = LusailEngine(Federation(remotes), use_threads=True)
            outcome = engine.execute(QUERY_QA)
            assert outcome.status == "OK", outcome.error
            assert set(row_values(outcome.result)) == QA_EXPECTED
        finally:
            self._teardown(servers, proxies, remotes)

    def test_seeded_fault_storm_yields_typed_outcomes_only(self):
        """Moderate fault rates: the query must finish within its real
        time bound and land in exactly one of the three legal states."""
        # Seeds chosen so connection 0 passes (the pool bootstraps) and
        # later connections fault — deterministically reproducible.
        profiles = [
            ChaosProfile(
                seed=8, reset_rate=0.25, truncate_rate=0.15,
                storm_rate=0.15, storm_retry_after=0.02,
            ),
            ChaosProfile(
                seed=12, reset_rate=0.25, truncate_rate=0.15,
                storm_rate=0.15, storm_retry_after=0.02,
            ),
        ]
        servers, proxies, remotes = self._federate_through(profiles)
        try:
            engine = LusailEngine(
                Federation(remotes), use_threads=True, max_retries=4,
            )
            started = time.monotonic()
            outcome = engine.execute(QUERY_QA)
            elapsed = time.monotonic() - started
            assert elapsed < 120.0
            if outcome.status == "OK":
                if outcome.completeness.endpoints_failed:
                    # honest partial: the report names the lost members
                    assert set(outcome.completeness.endpoints_failed) <= {
                        "ep1", "ep2"
                    }
                else:
                    # full answer must be *the* answer
                    assert set(row_values(outcome.result)) == QA_EXPECTED
            else:
                # typed failure, never a silent empty
                assert outcome.error
                assert outcome.result is None
            fired = sum(
                proxy.stats()[kind]
                for proxy in proxies
                for kind in ("reset", "truncate", "garbage", "storm")
            )
            assert fired > 0  # the storm actually happened
        finally:
            self._teardown(servers, proxies, remotes)

    def test_dead_upstream_fails_typed_not_hanging(self):
        """Proxy to a closed port: connect errors all the way down."""
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        proxy = ChaosProxy("127.0.0.1", dead_port, ChaosProfile.quiet())
        try:
            remote = make_remote(proxy, request_timeout=1.5)
            started = time.monotonic()
            with pytest.raises(EndpointUnavailableError):
                remote.execute(LIST_QUERY)
            assert time.monotonic() - started < 10.0
            remote.close()
        finally:
            proxy.close()
