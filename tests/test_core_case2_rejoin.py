"""Tests for §3.3 Case 2: cross-endpoint re-join of a single subquery.

The paper's example: EP1 holds <a1,p,b>, <b,q,c1>; EP2 holds <a2,p,b>,
<b,q,c2>.  ?y is a *local* join variable (the set-difference checks are
empty at both endpoints), so <?x p ?y> and <?y q ?z> share a subquery —
but the correct federated answer also contains the cross-endpoint rows
(a1,b,c2) and (a2,b,c1), which Lusail recovers by re-joining per-pattern
projections at the server."""

import pytest

from repro.core import LusailEngine
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import Federation
from repro.rdf import parse as nt_parse

from .conftest import result_values

EP1 = """
<http://x/a1> <http://p> <http://shared/b> .
<http://shared/b> <http://q> <http://x/c1> .
"""
EP2 = """
<http://x/a2> <http://p> <http://shared/b> .
<http://shared/b> <http://q> <http://x/c2> .
"""

QUERY = "SELECT ?x ?y ?z WHERE { ?x <http://p> ?y . ?y <http://q> ?z . }"

EXPECTED = {
    ("http://x/a1", "http://shared/b", "http://x/c1"),
    ("http://x/a1", "http://shared/b", "http://x/c2"),
    ("http://x/a2", "http://shared/b", "http://x/c1"),
    ("http://x/a2", "http://shared/b", "http://x/c2"),
}


@pytest.fixture
def federation():
    return Federation(
        [
            LocalEndpoint.from_triples("ep1", nt_parse(EP1)),
            LocalEndpoint.from_triples("ep2", nt_parse(EP2)),
        ],
        network=LOCAL_CLUSTER,
    )


class TestCase2:
    def test_variable_is_local_single_subquery(self, federation):
        engine = LusailEngine(federation)
        subqueries = engine.explain(QUERY)
        assert len(subqueries) == 1
        assert len(subqueries[0].patterns) == 2

    def test_cross_endpoint_rows_recovered(self, federation):
        engine = LusailEngine(federation)
        outcome = engine.execute(QUERY)
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == EXPECTED

    def test_no_overlap_means_plain_union(self):
        """When binding values never overlap across endpoints, the result
        is the plain union of local answers (no spurious rows)."""
        ep1 = """
        <http://x/a1> <http://p> <http://x/b1> .
        <http://x/b1> <http://q> <http://x/c1> .
        """
        ep2 = """
        <http://x/a2> <http://p> <http://x/b2> .
        <http://x/b2> <http://q> <http://x/c2> .
        """
        federation = Federation(
            [
                LocalEndpoint.from_triples("ep1", nt_parse(ep1)),
                LocalEndpoint.from_triples("ep2", nt_parse(ep2)),
            ],
            network=LOCAL_CLUSTER,
        )
        outcome = LusailEngine(federation).execute(QUERY)
        assert outcome.status == "OK"
        assert result_values(outcome.result) == {
            ("http://x/a1", "http://x/b1", "http://x/c1"),
            ("http://x/a2", "http://x/b2", "http://x/c2"),
        }

    def test_rejoin_respects_filters(self, federation):
        query = (
            "SELECT ?x ?y ?z WHERE { ?x <http://p> ?y . ?y <http://q> ?z . "
            'FILTER(STR(?z) != "http://x/c2") }'
        )
        outcome = LusailEngine(federation).execute(query)
        assert outcome.status == "OK", outcome.error
        values = result_values(outcome.result)
        assert values == {
            ("http://x/a1", "http://shared/b", "http://x/c1"),
            ("http://x/a2", "http://shared/b", "http://x/c1"),
        }
