"""Tests for the benchmark dataset generators and query suites."""

import pytest

from repro.baselines import FedXEngine
from repro.core import LusailEngine
from repro.datasets import (
    BIG_QUERIES,
    BIO2RDF_QUERIES,
    Bio2RdfGenerator,
    COMPLEX_QUERIES,
    ENDPOINT_IDS,
    LRB_QUERIES,
    LUBM_QUERIES,
    LargeRdfBenchGenerator,
    LubmGenerator,
    QFED_QUERIES,
    QFedGenerator,
    QUERY_CATEGORY,
    SIMPLE_QUERIES,
)


class TestLubmGenerator:
    def test_deterministic(self):
        a = LubmGenerator(universities=2).generate_university(0)
        b = LubmGenerator(universities=2).generate_university(0)
        assert a == b

    def test_different_universities_differ(self):
        gen = LubmGenerator(universities=2)
        assert gen.generate_university(0) != gen.generate_university(1)

    def test_interlinks_exist(self):
        gen = LubmGenerator(universities=4, interlink_ratio=0.5)
        federation = gen.build_federation()
        # some PhDDegreeFrom/undergraduateDegreeFrom objects live remotely
        from repro.rdf import UB, TriplePattern, Variable

        endpoint = federation.endpoint("university0")
        pattern = TriplePattern(Variable("p"), UB.PhDDegreeFrom, Variable("u"))
        targets = {t.object for t in endpoint.store.match(pattern)}
        remote = {u for u in targets if "university0" not in u.value}
        assert remote, "expected cross-university degree interlinks"

    def test_zero_interlinks_possible(self):
        gen = LubmGenerator(universities=2, interlink_ratio=0.0)
        federation = gen.build_federation()
        from repro.rdf import UB, TriplePattern, Variable

        for endpoint in federation.endpoints():
            own = endpoint.endpoint_id
            pattern = TriplePattern(Variable("p"), UB.PhDDegreeFrom, Variable("u"))
            for triple in endpoint.store.match(pattern):
                assert own.replace("university", "university") in own
                assert f"www.{own}." in triple.object.value

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            LubmGenerator(universities=0)
        with pytest.raises(ValueError):
            LubmGenerator(
                professors_per_department=8, courses_per_department=4
            )

    def test_paper_decomposition_claims(self):
        """Section 5.2: Q1 and Q2 have one subquery; Q3 and Q4 have two
        (a delayed second subquery)."""
        federation = LubmGenerator(universities=2).build_federation()
        engine = LusailEngine(federation)
        assert len(engine.explain(LUBM_QUERIES["Q1"])) == 1
        assert len(engine.explain(LUBM_QUERIES["Q2"])) == 1
        assert len(engine.explain(LUBM_QUERIES["Q3"])) == 2
        assert len(engine.explain(LUBM_QUERIES["Q4"])) == 2

    @pytest.mark.parametrize("name", list(LUBM_QUERIES))
    def test_queries_nonempty_and_engines_agree(self, name):
        federation = LubmGenerator(universities=2).build_federation()
        lusail = LusailEngine(federation).execute(LUBM_QUERIES[name])
        fedx = FedXEngine(federation).execute(LUBM_QUERIES[name])
        assert lusail.status == "OK", lusail.error
        assert fedx.status == "OK", fedx.error
        assert len(lusail) > 0
        assert sorted(map(tuple, lusail.result.rows)) == sorted(
            map(tuple, fedx.result.rows)
        )


class TestQFedGenerator:
    @pytest.fixture(scope="class")
    def federation(self):
        return QFedGenerator(drugs=60, diseases=20).build_federation()

    def test_four_endpoints(self, federation):
        assert sorted(federation.endpoint_ids) == [
            "dailymed", "diseasome", "drugbank", "sider",
        ]

    def test_big_literals_present(self, federation):
        from repro.datasets.qfed import DAILYMED
        from repro.rdf import TriplePattern, Variable

        endpoint = federation.endpoint("dailymed")
        pattern = TriplePattern(
            Variable("l"), DAILYMED.fullDescription, Variable("d")
        )
        sizes = [len(t.object.lexical) for t in endpoint.store.match(pattern)]
        assert sizes and min(sizes) > 500

    @pytest.mark.parametrize("name", list(QFED_QUERIES))
    def test_queries_nonempty_and_engines_agree(self, federation, name):
        lusail = LusailEngine(federation).execute(QFED_QUERIES[name])
        fedx = FedXEngine(federation).execute(QFED_QUERIES[name])
        assert lusail.status == "OK", lusail.error
        assert fedx.status == "OK", fedx.error
        assert len(lusail) > 0
        assert sorted(map(tuple, lusail.result.rows)) == sorted(
            map(tuple, fedx.result.rows)
        )


class TestLargeRdfBench:
    @pytest.fixture(scope="class")
    def federation(self):
        return LargeRdfBenchGenerator(scale=0.4).build_federation()

    def test_thirteen_endpoints(self, federation):
        assert sorted(federation.endpoint_ids) == sorted(ENDPOINT_IDS)
        assert len(federation) == 13

    def test_tcga_endpoints_are_largest(self, federation):
        """Table 1's proportions: the TCGA result stores dominate."""
        sizes = {
            e.endpoint_id: e.triple_count() for e in federation.endpoints()
        }
        assert sizes["tcga-m"] == max(sizes.values())
        assert sizes["tcga-e"] > sizes["drugbank"]

    def test_category_partition(self):
        assert len(SIMPLE_QUERIES) == 14
        assert len(COMPLEX_QUERIES) == 10
        assert len(BIG_QUERIES) == 8
        assert len(LRB_QUERIES) == 32
        assert set(QUERY_CATEGORY) == set(LRB_QUERIES)

    def test_scale_parameter(self):
        small = LargeRdfBenchGenerator(scale=0.2).build_federation()
        large = LargeRdfBenchGenerator(scale=1.0).build_federation()
        assert large.total_triples() > small.total_triples()
        with pytest.raises(ValueError):
            LargeRdfBenchGenerator(scale=0)

    #: disjoint subgraphs joined by a filter: Lusail-only (paper §5.2)
    LUSAIL_ONLY = {"C5", "B5", "B6"}

    @pytest.mark.parametrize("name", sorted(LRB_QUERIES))
    def test_queries_nonempty_and_engines_agree(self, federation, name):
        lusail = LusailEngine(federation).execute(LRB_QUERIES[name])
        fedx = FedXEngine(federation).execute(LRB_QUERIES[name])
        assert lusail.status == "OK", lusail.error
        assert len(lusail) > 0, f"{name} returned no rows"
        if name in self.LUSAIL_ONLY:
            assert fedx.status == "RE"
            return
        assert fedx.status == "OK", fedx.error
        assert sorted(map(tuple, lusail.result.rows)) == sorted(
            map(tuple, fedx.result.rows)
        ), f"{name}: engines disagree"


class TestBio2Rdf:
    @pytest.fixture(scope="class")
    def federation(self):
        return Bio2RdfGenerator(drugs=60, genes=30).build_federation()

    def test_five_endpoints_with_limits(self, federation):
        assert len(federation) == 5
        for endpoint in federation.endpoints():
            assert endpoint.max_requests_per_query is not None

    def test_geo_regions_assigned(self, federation):
        regions = {e.region.name for e in federation.endpoints()}
        assert len(regions) == 5  # all different regions

    @pytest.mark.parametrize("name", list(BIO2RDF_QUERIES))
    def test_lusail_answers_all(self, federation, name):
        outcome = LusailEngine(federation).execute(BIO2RDF_QUERIES[name])
        assert outcome.status == "OK", outcome.error
        assert len(outcome) > 0

    def test_fedx_hits_public_endpoint_limit(self):
        """Table 2: FedX fails with runtime errors against real endpoints
        on the heavy query-log queries (its bound-join flood trips the
        public endpoints' politeness limits)."""
        federation = Bio2RdfGenerator(drugs=1500, genes=300).build_federation(
            request_limit=40
        )
        outcome = FedXEngine(federation).execute(BIO2RDF_QUERIES["R3"])
        assert outcome.status == "RE"
        lusail = LusailEngine(federation).execute(BIO2RDF_QUERIES["R3"])
        assert lusail.status == "OK", lusail.error
