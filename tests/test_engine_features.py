"""Engine-level feature tests: OPTIONAL, UNION, VALUES, modifiers,
disconnected subgraphs, error statuses, and ASK."""

import pytest

from repro.core import LusailEngine
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import Federation
from repro.rdf import parse as nt_parse

from .conftest import result_values

EP1 = """
<http://x/a1> <http://v/p> <http://x/b1> .
<http://x/b1> <http://v/q> <http://x/c1> .
<http://x/a1> <http://v/name> "alpha" .
<http://x/m1> <http://v/tag> "red" .
"""
EP2 = """
<http://x/a2> <http://v/p> <http://x/b2> .
<http://x/b2> <http://v/q> <http://x/c2> .
<http://x/a2> <http://v/name> "beta" .
<http://x/n1> <http://v/label> "red" .
"""


@pytest.fixture
def engine():
    federation = Federation(
        [
            LocalEndpoint.from_triples("ep1", nt_parse(EP1)),
            LocalEndpoint.from_triples("ep2", nt_parse(EP2)),
        ],
        network=LOCAL_CLUSTER,
    )
    return LusailEngine(federation)


class TestQueryForms:
    def test_ask_true_and_false(self, engine):
        yes = engine.execute("ASK { ?s <http://v/p> ?o }")
        assert yes.status == "OK" and yes.boolean is True
        no = engine.execute("ASK { ?s <http://v/none> ?o }")
        assert no.status == "OK" and no.boolean is False

    def test_select_distinct(self, engine):
        outcome = engine.execute(
            "SELECT DISTINCT ?p WHERE { ?s ?p ?o . ?s <http://v/p> ?b }"
        )
        assert outcome.status == "OK"
        predicates = {row[0] for row in result_values(outcome.result)}
        assert "http://v/p" in predicates

    def test_order_and_limit(self, engine):
        outcome = engine.execute(
            "SELECT ?n WHERE { ?s <http://v/name> ?n } ORDER BY ?n LIMIT 1"
        )
        assert outcome.status == "OK"
        assert result_values(outcome.result) == {("alpha",)}

    def test_order_desc(self, engine):
        outcome = engine.execute(
            "SELECT ?n WHERE { ?s <http://v/name> ?n } ORDER BY DESC(?n) LIMIT 1"
        )
        assert result_values(outcome.result) == {("beta",)}

    def test_offset(self, engine):
        outcome = engine.execute(
            "SELECT ?n WHERE { ?s <http://v/name> ?n } ORDER BY ?n OFFSET 1"
        )
        assert result_values(outcome.result) == {("beta",)}


class TestGroupFeatures:
    def test_optional_spanning_endpoints(self, engine):
        outcome = engine.execute(
            "SELECT ?s ?n WHERE { ?s <http://v/p> ?b . "
            "OPTIONAL { ?s <http://v/name> ?n } }"
        )
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == {
            ("http://x/a1", "alpha"),
            ("http://x/a2", "beta"),
        }

    def test_union_across_endpoints(self, engine):
        outcome = engine.execute(
            "SELECT ?x WHERE { { ?x <http://v/tag> ?t } UNION "
            "{ ?x <http://v/label> ?t } }"
        )
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == {
            ("http://x/m1",), ("http://x/n1",),
        }

    def test_values_in_query(self, engine):
        outcome = engine.execute(
            "SELECT ?s ?b WHERE { VALUES ?s { <http://x/a1> } "
            "?s <http://v/p> ?b }"
        )
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == {("http://x/a1", "http://x/b1")}

    def test_disconnected_subgraphs_with_filter(self, engine):
        """The C5/B5/B6 shape: two disjoint subgraphs joined by a filter
        variable — supported by Lusail only."""
        outcome = engine.execute(
            "SELECT ?m ?n WHERE { ?m <http://v/tag> ?t . "
            "?n <http://v/label> ?l . FILTER(?t = ?l) }"
        )
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == {("http://x/m1", "http://x/n1")}

    def test_filter_pushed_to_subquery(self, engine):
        outcome = engine.execute(
            'SELECT ?s WHERE { ?s <http://v/name> ?n . FILTER(?n = "alpha") }'
        )
        assert outcome.status == "OK"
        assert result_values(outcome.result) == {("http://x/a1",)}

    def test_exists_filter_unsupported_globally(self, engine):
        outcome = engine.execute(
            "SELECT ?s WHERE { ?s <http://v/p> ?b . "
            "FILTER NOT EXISTS { ?b <http://v/q> ?c } }"
        )
        # global EXISTS is outside the supported subset -> clean RE status
        assert outcome.status == "RE"


class TestStatuses:
    def test_timeout_status(self, engine):
        outcome = engine.execute(
            "SELECT ?s WHERE { ?s ?p ?o }", timeout_seconds=1e-12
        )
        assert outcome.status == "TO"
        assert outcome.result is None

    def test_memory_status(self, engine):
        outcome = engine.execute(
            "SELECT * WHERE { ?s ?p ?o . ?x <http://v/p> ?y }",
            max_intermediate_rows=1,
        )
        assert outcome.status == "OOM"

    def test_real_time_limit(self, engine):
        outcome = engine.execute(
            "SELECT ?s WHERE { ?s ?p ?o }", real_time_limit=0.0
        )
        assert outcome.status == "TO"

    def test_parse_error_is_re(self, engine):
        outcome = engine.execute("SELECT ?s WHERE { ?s ?p }")
        assert outcome.status == "RE"
        assert outcome.error

    def test_metrics_survive_failure(self, engine):
        outcome = engine.execute(
            "SELECT ?s WHERE { ?s ?p ?o }", timeout_seconds=1e-12
        )
        assert outcome.metrics is not None


class TestExplain:
    def test_explain_does_not_execute(self, engine):
        subqueries = engine.explain(
            "SELECT ?s WHERE { ?s <http://v/p> ?b . ?b <http://v/q> ?c }"
        )
        assert subqueries
        assert all(sq.sources for sq in subqueries)
