"""Dictionary-encoding tests: intern-table semantics, ID-native
execution equivalence (rows *and* order), statistics maintenance under
interning, and the join-layer ID kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.joins import _ID_KERNEL_MIN_ROWS, hash_join, left_outer_join
from repro.core.sape import BindingTracker
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint, Region
from repro.endpoint.metrics import ExecutionContext
from repro.rdf import IRI, Literal, TermDictionary, Triple, TriplePattern, Variable
from repro.sparql import Evaluator, parse_query
from repro.sparql.ast import GroupPattern, Query
from repro.sparql.results import ResultSet
from repro.store import TripleStore

_TERMS = [IRI(f"http://x/t{i}") for i in range(5)] + [Literal("lit")]
_VARIABLES = [Variable(name) for name in ("a", "b", "c")]

_triples = st.builds(
    Triple,
    st.sampled_from(_TERMS),
    st.sampled_from(_TERMS),
    st.sampled_from(_TERMS),
)
_pattern_terms = st.one_of(st.sampled_from(_TERMS), st.sampled_from(_VARIABLES))
_patterns = st.builds(TriplePattern, _pattern_terms, _pattern_terms, _pattern_terms)


def _iri(name):
    return IRI("http://ex/" + name)


class TestTermDictionary:
    def test_encode_is_idempotent_and_dense(self):
        d = TermDictionary()
        a, b = _iri("a"), _iri("b")
        assert d.encode(a) == 0
        assert d.encode(b) == 1
        assert d.encode(a) == 0
        assert len(d) == 2
        assert d.terms_interned == 2
        assert d.hits == 1  # only the re-encode of a

    def test_decode_roundtrip_insertion_order(self):
        d = TermDictionary()
        terms = [_iri(f"t{i}") for i in range(10)]
        ids = [d.encode(t) for t in terms]
        assert ids == list(range(10))
        assert d.decode_many(ids) == terms
        for t, i in zip(terms, ids):
            assert d.decode(i) == t

    def test_lookup_never_interns(self):
        d = TermDictionary()
        assert d.lookup(_iri("missing")) is None
        assert len(d) == 0
        tid = d.encode(_iri("present"))
        assert d.lookup(_iri("present")) == tid
        assert _iri("present") in d
        assert _iri("missing") not in d

    def test_equal_terms_share_one_id(self):
        d = TermDictionary()
        assert d.encode(IRI("http://x/a")) == d.encode(IRI("http://x/a"))
        assert d.encode(Literal("5")) != d.encode(
            Literal("5", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer"))
        )


class TestStoreModesEquivalent:
    """The dictionary-keyed store is observably identical to the
    term-keyed ablation — match streams, counts, and statistics."""

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_triples, max_size=15), _patterns)
    def test_match_terms_identical_stream(self, triples, pattern):
        with_dict = TripleStore(triples, use_dictionary=True)
        without = TripleStore(triples, use_dictionary=False)
        assert list(with_dict.match_terms(pattern)) == list(without.match_terms(pattern))
        assert with_dict.count(pattern) == without.count(pattern)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_triples, max_size=15))
    def test_statistics_identical(self, triples):
        with_dict = TripleStore(triples, use_dictionary=True)
        without = TripleStore(triples, use_dictionary=False)
        assert len(with_dict) == len(without)
        assert with_dict.predicates() == without.predicates()
        assert with_dict.subjects() == without.subjects()
        assert with_dict.objects() == without.objects()
        for p in without.predicates():
            assert with_dict.predicate_count(p) == without.predicate_count(p)
            assert with_dict.distinct_subject_count(p) == without.distinct_subject_count(p)
            assert with_dict.distinct_object_count(p) == without.distinct_object_count(p)
            assert with_dict.subjects(p) == without.subjects(p)
            assert with_dict.objects(p) == without.objects(p)
        assert set(with_dict.triples()) == set(without.triples())

    def test_ground_query_for_unknown_term_is_empty(self):
        store = TripleStore([Triple(_iri("s"), _iri("p"), _iri("o"))])
        ghost = _iri("never-interned")
        assert list(store.match_terms(TriplePattern(ghost, Variable("p"), Variable("o")))) == []
        assert store.count(TriplePattern(ghost, Variable("p"), Variable("o"))) == 0
        assert store.predicate_count(ghost) == 0
        assert Triple(ghost, ghost, ghost) not in store
        # looking up unknown terms must not grow the intern table
        assert ghost not in store.dictionary


class TestEvaluatorDifferential:
    """use_dictionary=True and =False produce identical ResultSets —
    the same rows in the same deterministic order."""

    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(_triples, max_size=15),
        st.lists(_patterns, min_size=1, max_size=3),
    )
    def test_bgp_select_identical_rows_and_order(self, triples, patterns):
        query = Query(form="SELECT", where=GroupPattern(elements=list(patterns)))
        results = []
        for use_dictionary in (True, False):
            store = TripleStore(triples, use_dictionary=use_dictionary)
            evaluator = Evaluator(store, use_dictionary=use_dictionary)
            results.append(evaluator.select(query))
        with_dict, without = results
        assert with_dict.variables == without.variables
        assert with_dict.rows == without.rows  # order included

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(_triples, max_size=15),
        st.lists(_patterns, min_size=1, max_size=2),
    )
    def test_evaluator_knob_alone_is_equivalent(self, triples, patterns):
        """Same dictionary-keyed store, ID executor on vs off."""
        store = TripleStore(triples, use_dictionary=True)
        query = Query(form="SELECT", where=GroupPattern(elements=list(patterns)))
        with_ids = Evaluator(store, use_dictionary=True).select(query)
        term_path = Evaluator(store, use_dictionary=False).select(query)
        assert with_ids.variables == term_path.variables
        assert with_ids.rows == term_path.rows

    def test_general_path_with_filter_uses_id_bgp(self):
        triples = [
            Triple(_iri(f"s{i}"), _iri("p"), Literal(str(i), datatype=None))
            for i in range(6)
        ]
        store = TripleStore(triples)
        query_text = (
            'SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . FILTER(?o != "3") }'
        )
        query = parse_query(query_text)
        with_dict = Evaluator(store, use_dictionary=True).select(query)
        without = Evaluator(store, use_dictionary=False).select(query)
        assert with_dict.rows == without.rows
        assert len(with_dict.rows) == 5


class TestRemoveAndInvalidation:
    def test_remove_keeps_predicate_statistics(self):
        s0, s1, p, o = _iri("s0"), _iri("s1"), _iri("p"), _iri("o")
        store = TripleStore([
            Triple(s0, p, o),
            Triple(s1, p, o),
            Triple(s0, p, _iri("o2")),
        ])
        assert store.predicate_count(p) == 3
        assert store.distinct_subject_count(p) == 2
        assert store.remove(Triple(s0, p, _iri("o2")))
        assert store.predicate_count(p) == 2
        assert store.distinct_subject_count(p) == 2
        assert store.remove(Triple(s0, p, o))
        assert store.predicate_count(p) == 1
        assert store.distinct_subject_count(p) == 1
        assert store.subjects(p) == {s1}
        assert store.remove(Triple(s1, p, o))
        assert store.predicate_count(p) == 0
        assert store.predicates() == set()
        assert len(store) == 0
        # the intern table never evicts: IDs stay stable across removals
        assert p in store.dictionary

    def test_remove_unknown_term_is_noop(self):
        store = TripleStore([Triple(_iri("s"), _iri("p"), _iri("o"))])
        version = store.version
        assert not store.remove(Triple(_iri("ghost"), _iri("p"), _iri("o")))
        assert store.version == version
        assert len(store) == 1

    def test_interning_does_not_bump_version(self):
        store = TripleStore([Triple(_iri("s"), _iri("p"), _iri("o"))])
        version = store.version
        # queries intern their constants but must not invalidate plans
        list(store.match_terms(
            TriplePattern(Variable("s"), _iri("p"), Variable("o"))
        ))
        store.count(TriplePattern(Variable("s"), _iri("p2"), Variable("o")))
        assert store.version == version

    def test_version_invalidates_cached_plan_after_remove(self):
        s, p, o = _iri("s"), _iri("p"), _iri("o")
        store = TripleStore([Triple(s, p, o), Triple(s, p, _iri("o2"))])
        evaluator = Evaluator(store)
        query = parse_query("SELECT ?o WHERE { <http://ex/s> <http://ex/p> ?o }")
        assert len(evaluator.select(query)) == 2
        built = evaluator.stats.plans_built
        evaluator.select(query)
        assert evaluator.stats.plans_built == built  # cache hit
        assert store.remove(Triple(s, p, _iri("o2")))
        assert len(evaluator.select(query)) == 1
        assert evaluator.stats.plans_built == built + 1  # version miss -> replan

    def test_add_remove_add_roundtrip(self):
        s, p, o = _iri("s"), _iri("p"), _iri("o")
        store = TripleStore()
        assert store.add(Triple(s, p, o))
        assert not store.add(Triple(s, p, o))
        assert store.remove(Triple(s, p, o))
        assert store.add(Triple(s, p, o))
        assert list(store.match_terms(TriplePattern(s, p, Variable("x")))) == [(s, p, o)]


class TestJoinKernel:
    def _results(self, n):
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        left = ResultSet((x, y), [(_iri(f"k{i % 7}"), _iri(f"v{i}")) for i in range(n)])
        right = ResultSet(
            (y, z),
            [(_iri(f"v{i}"), _iri(f"w{i}")) for i in range(0, n, 2)]
            + [(None, _iri("wild"))],
        )
        return left, right

    def test_kernel_bit_identical_to_term_mode(self):
        left, right = self._results(3 * _ID_KERNEL_MIN_ROWS)
        on = ExecutionContext(LOCAL_CLUSTER, Region("local"), use_dictionary=True)
        off = ExecutionContext(LOCAL_CLUSTER, Region("local"), use_dictionary=False)
        for op in (hash_join, left_outer_join):
            a = op(left, right, on)
            b = op(left, right, off)
            assert a.variables == b.variables
            assert a.rows == b.rows  # order included
        assert on.metrics.join_terms_interned > 0
        assert on.metrics.join_dictionary_hits > 0
        assert off.metrics.join_terms_interned == 0

    def test_small_joins_skip_the_kernel(self):
        left, right = self._results(4)
        context = ExecutionContext(LOCAL_CLUSTER, Region("local"))
        result = hash_join(left, right, context)
        assert context.join_dictionary is None
        assert context.metrics.join_terms_interned == 0
        # 2 keyed matches + 4 matches against the wildcard (None) row
        assert len(result) == 6

    def test_context_free_join_matches(self):
        left, right = self._results(3 * _ID_KERNEL_MIN_ROWS)
        context = ExecutionContext(LOCAL_CLUSTER, Region("local"))
        assert hash_join(left, right).rows == hash_join(left, right, context).rows


class TestBindingTracker:
    def test_id_tracker_matches_term_tracker(self):
        x, y = Variable("x"), Variable("y")
        r1 = ResultSet((x, y), [(_iri(f"a{i % 4}"), _iri(f"b{i}")) for i in range(10)])
        r2 = ResultSet((x,), [(_iri(f"a{i}"),) for i in range(3)])
        term_tracker = BindingTracker()
        id_tracker = BindingTracker(TermDictionary())
        for tracker in (term_tracker, id_tracker):
            tracker.add(r1)
            tracker.add(r2)
        decoded = {
            v: {id_tracker.dictionary.decode(i) for i in ids}
            for v, ids in id_tracker.bindings.items()
        }
        assert decoded == term_tracker.bindings
        assert all(
            isinstance(i, int)
            for ids in id_tracker.bindings.values()
            for i in ids
        )


class TestStatsPlumbing:
    def test_evaluator_stats_count_dictionary_traffic(self):
        store = TripleStore(
            [Triple(_iri(f"s{i}"), _iri("p"), _iri(f"o{i}")) for i in range(8)]
        )
        evaluator = Evaluator(store)
        query = parse_query("SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }")
        evaluator.select(query)
        assert evaluator.stats.dictionary_hits > 0
        assert evaluator.stats.decode_seconds >= 0.0
        # fresh query constant interned during evaluation
        before = evaluator.stats.terms_interned
        ghost = parse_query("SELECT ?s WHERE { ?s <http://ex/brand-new> ?o }")
        evaluator.select(ghost)
        assert evaluator.stats.terms_interned > before

    def test_endpoint_compute_includes_dictionary_counters(self):
        endpoint = LocalEndpoint.from_triples(
            "e0",
            [Triple(_iri(f"s{i}"), _iri("p"), _iri(f"o{i}")) for i in range(8)],
        )
        response = endpoint.execute("SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }")
        assert response.compute.get("dictionary_hits", 0) > 0

    def test_term_mode_endpoint_reports_no_dictionary_traffic(self):
        endpoint = LocalEndpoint.from_triples(
            "e0",
            [Triple(_iri(f"s{i}"), _iri("p"), _iri(f"o{i}")) for i in range(8)],
            use_dictionary=False,
        )
        assert endpoint.store.dictionary is None
        response = endpoint.execute("SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }")
        assert "dictionary_hits" not in response.compute
        assert "terms_interned" not in response.compute
