"""The tentpole end-to-end proof: federating over real HTTP sockets.

Boots real ``LusailHTTPServer`` instances (one per paper endpoint) and
federates over them with :class:`RemoteEndpoint` — the self-federation
the demo paper runs across Azure regions, in miniature on loopback.

The core invariant: the loopback-HTTP federation must be **bit-identical**
(rows *and* order) to the same federation evaluated in-process, and any
divergence must surface as a typed error — never a silently-empty result.
"""

import contextlib
import threading
import time

import pytest

from .conftest import EP1_TRIPLES, EP2_TRIPLES, QA_EXPECTED, QUERY_QA
from repro.core import LusailEngine
from repro.endpoint import (
    EndpointConnectionError,
    EndpointProtocolError,
    EndpointThrottledError,
    EngineEndpoint,
    LocalEndpoint,
    RemoteEndpoint,
    federate_remotes,
)
from repro.federation import Federation
from repro.rdf import parse as nt_parse
from repro.serving import QuerySessionManager, start_server

UB = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"


def member_engine(endpoint_id, triples):
    federation = Federation(
        [LocalEndpoint.from_triples(endpoint_id, nt_parse(triples))]
    )
    return LusailEngine(
        federation, use_threads=True, reset_request_windows=False
    )


@contextlib.contextmanager
def serve_members(*, tenants=(), max_concurrent=8):
    """Two servers, each hosting one paper endpoint (ep1 / ep2)."""
    servers = []
    try:
        for endpoint_id, triples in (
            ("ep1", EP1_TRIPLES), ("ep2", EP2_TRIPLES)
        ):
            manager = QuerySessionManager(
                member_engine(endpoint_id, triples),
                tenants=tenants,
                max_concurrent=max_concurrent,
            )
            server, _thread = start_server(manager)
            servers.append(server)
        yield servers
    finally:
        for server in servers:
            server.shutdown()
            server.server_close()


def row_values(result):
    return [
        tuple(getattr(t, "value", None) or t.lexical for t in row)
        for row in result.rows
    ]


class TestRemoteFederation:
    def test_answers_match_paper_expectation_over_http(self):
        with serve_members() as servers:
            remotes = [
                RemoteEndpoint(server.url, endpoint_id=f"ep{i + 1}")
                for i, server in enumerate(servers)
            ]
            engine = LusailEngine(Federation(remotes), use_threads=True)
            outcome = engine.execute(QUERY_QA)
            assert outcome.status == "OK", outcome.error
            assert set(row_values(outcome.result)) == QA_EXPECTED
            for remote in remotes:
                remote.close()

    def test_http_federation_bit_identical_to_in_process(self):
        """Rows AND order must match the in-process comparator exactly."""
        with serve_members() as servers:
            remotes = [
                RemoteEndpoint(server.url, endpoint_id=f"ep{i + 1}")
                for i, server in enumerate(servers)
            ]
            over_http = LusailEngine(Federation(remotes), use_threads=True)
            http_outcome = over_http.execute(QUERY_QA)

            in_process = LusailEngine(
                Federation([
                    EngineEndpoint(member_engine("ep1", EP1_TRIPLES), "ep1"),
                    EngineEndpoint(member_engine("ep2", EP2_TRIPLES), "ep2"),
                ]),
                use_threads=True,
            )
            local_outcome = in_process.execute(QUERY_QA)

            assert http_outcome.status == "OK", http_outcome.error
            assert local_outcome.status == "OK", local_outcome.error
            assert (
                row_values(http_outcome.result)
                == row_values(local_outcome.result)
            )
            for remote in remotes:
                remote.close()

    def test_connections_are_pooled_and_reused(self):
        with serve_members() as servers:
            remote = RemoteEndpoint(servers[0].url, endpoint_id="ep1")
            for _ in range(6):
                remote.execute(
                    f"SELECT ?s WHERE {{ ?s <{UB}advisor> ?o }}"
                )
            stats = remote.pool_stats()
            assert stats["requests"] == 6
            assert stats["connections_created"] <= 2
            assert stats["connections_reused"] >= 4
            assert stats["in_flight"] == 0
            remote.close()

    def test_long_query_travels_as_post(self):
        with serve_members() as servers:
            remote = RemoteEndpoint(servers[0].url, endpoint_id="ep1")
            padding = " ".join("#" for _ in range(1200))
            response = remote.execute(
                f"SELECT ?s WHERE {{ ?s <{UB}advisor> ?o }} {padding}"
            )
            assert len(response.value.rows) > 0
            remote.close()

    def test_ask_queries_round_trip(self):
        with serve_members() as servers:
            remote = RemoteEndpoint(servers[0].url, endpoint_id="ep1")
            yes = remote.execute(f"ASK {{ ?s <{UB}advisor> ?o }}")
            no = remote.execute(f"ASK {{ ?s <{UB}nonexistent> ?o }}")
            assert yes.value is True
            assert no.value is False
            remote.close()

    def test_locality_probes_answerable_by_served_engine(self):
        """A served Lusail engine must answer another engine's Figure-5
        locality probes (FILTER NOT EXISTS) — the self-federation loop."""
        with serve_members() as servers:
            remote = RemoteEndpoint(servers[0].url, endpoint_id="ep1")
            probe = (
                f"SELECT ?S WHERE {{ "
                f"?S <{RDF_TYPE}> <{UB}GraduateStudent> . "
                f"FILTER NOT EXISTS {{ ?S <{UB}advisor> ?x }} }}"
            )
            response = remote.execute(probe)
            # every ep1 graduate student has an advisor
            assert len(response.value.rows) == 0
            remote.close()

    def test_federate_remotes_assigns_sequential_ids(self):
        with serve_members() as servers:
            remotes = federate_remotes([s.url for s in servers])
            assert [r.endpoint_id for r in remotes] == ["remote0", "remote1"]
            response = remotes[0].execute(
                f"SELECT ?s WHERE {{ ?s <{UB}advisor> ?o }}"
            )
            assert len(response.value.rows) > 0
            for remote in remotes:
                remote.close()

    def test_endpoint_stats_include_remote_pools(self):
        with serve_members() as servers:
            remote = RemoteEndpoint(servers[0].url, endpoint_id="ep1")
            engine = LusailEngine(Federation([remote]), use_threads=True)
            outcome = engine.execute(
                f"SELECT ?s WHERE {{ ?s <{UB}advisor> ?o }}"
            )
            assert outcome.status == "OK"
            stats = engine.endpoint_stats()
            assert "ep1" in stats
            assert stats["ep1"]["pool"]["requests"] >= 1
            remote.close()


class TestRemoteFailureClassification:
    def test_connect_refused_is_typed(self):
        # Bind-then-close guarantees nothing listens on the port.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        remote = RemoteEndpoint(
            f"http://127.0.0.1:{port}", endpoint_id="gone",
            connect_timeout=0.5, request_timeout=1.0,
        )
        with pytest.raises(EndpointConnectionError) as info:
            remote.execute("ASK { ?s ?p ?o }")
        assert info.value.kind == "connect-refused"

    def test_bad_query_is_a_permanent_protocol_error(self):
        with serve_members() as servers:
            remote = RemoteEndpoint(servers[0].url, endpoint_id="ep1")
            with pytest.raises(EndpointProtocolError) as info:
                remote.execute("THIS IS NOT SPARQL")
            assert info.value.retryable is False
            remote.close()

    def test_oversized_body_is_rejected(self):
        with serve_members() as servers:
            remote = RemoteEndpoint(
                servers[0].url, endpoint_id="ep1", max_body_bytes=64,
            )
            with pytest.raises(EndpointProtocolError) as info:
                remote.execute(f"SELECT ?s WHERE {{ ?s <{UB}advisor> ?o }}")
            assert info.value.retryable is False
            assert "exceeded" in info.value.detail
            remote.close()

    def test_unknown_tenant_is_permanent(self):
        from repro.serving import TenantClass

        tenants = (TenantClass(name="gold", api_key="gold", weight=1.0),)
        with serve_members(tenants=tenants) as servers:
            remote = RemoteEndpoint(
                servers[0].url, endpoint_id="ep1", api_key="wrong",
            )
            with pytest.raises(EndpointProtocolError) as info:
                remote.execute("ASK { ?s ?p ?o }")
            assert info.value.retryable is False
            remote.close()


class TestGracefulShutdown:
    def test_draining_server_rejects_with_retry_after(self):
        manager = QuerySessionManager(
            member_engine("ep1", EP1_TRIPLES), tenants=(), max_concurrent=4
        )
        server, _thread = start_server(manager)
        try:
            remote = RemoteEndpoint(server.url, endpoint_id="ep1")
            remote.execute("ASK { ?s ?p ?o }")  # healthy first
            server.draining = True
            with pytest.raises(EndpointThrottledError) as info:
                remote.execute("ASK { ?s ?p ?o }")
            assert info.value.http_status == 503
            assert info.value.retry_after > 0
            remote.close()
        finally:
            server.draining = False
            server.shutdown()
            server.server_close()

    def test_shutdown_gracefully_waits_for_in_flight(self):
        manager = QuerySessionManager(
            member_engine("ep1", EP1_TRIPLES), tenants=(), max_concurrent=4
        )
        server, _thread = start_server(manager)
        release = threading.Event()
        original = manager.execute

        def slow_execute(*args, **kwargs):
            release.wait(timeout=5.0)
            return original(*args, **kwargs)

        manager.execute = slow_execute
        results = {}

        def client():
            remote = RemoteEndpoint(server.url, endpoint_id="ep1")
            try:
                results["response"] = remote.execute("ASK { ?s ?p ?o }")
            except Exception as error:  # pragma: no cover - diagnostic
                results["error"] = error
            finally:
                remote.close()

        worker = threading.Thread(target=client)
        worker.start()
        deadline = time.monotonic() + 5.0
        while server.inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.inflight == 1

        def drain_then_release():
            time.sleep(0.1)
            release.set()

        threading.Thread(target=drain_then_release).start()
        drained = server.shutdown_gracefully(drain_seconds=5.0)
        worker.join(timeout=5.0)
        server.server_close()
        assert drained is True
        assert "error" not in results, results.get("error")
        assert results["response"].value is True

    def test_shutdown_gracefully_is_immediate_when_idle(self):
        manager = QuerySessionManager(
            member_engine("ep1", EP1_TRIPLES), tenants=(), max_concurrent=4
        )
        server, _thread = start_server(manager)
        started = time.monotonic()
        drained = server.shutdown_gracefully(drain_seconds=5.0)
        server.server_close()
        assert drained is True
        assert time.monotonic() - started < 2.0

    def test_health_reports_draining(self):
        import json
        import urllib.request

        manager = QuerySessionManager(
            member_engine("ep1", EP1_TRIPLES), tenants=(), max_concurrent=4
        )
        server, _thread = start_server(manager)
        try:
            with urllib.request.urlopen(f"{server.url}/health") as response:
                assert json.loads(response.read())["status"] == "ok"
            server.draining = True
            with urllib.request.urlopen(f"{server.url}/health") as response:
                assert json.loads(response.read())["status"] == "draining"
        finally:
            server.draining = False
            server.shutdown()
            server.server_close()
