"""Tests for the SPARQL lexer/parser and serializer round-trips."""

import pytest

from repro.rdf import IRI, Literal, TriplePattern, Variable, XSD_INTEGER
from repro.sparql import (
    ExistsExpr,
    OptionalPattern,
    SparqlSyntaxError,
    SubSelect,
    UnionPattern,
    ValuesBlock,
    parse_query,
    serialize_query,
)


class TestBasicParsing:
    def test_select_with_variables(self):
        q = parse_query("SELECT ?s ?o WHERE { ?s <http://p> ?o . }")
        assert q.form == "SELECT"
        assert q.select_variables == [Variable("s"), Variable("o")]
        assert q.triple_patterns() == [
            TriplePattern(Variable("s"), IRI("http://p"), Variable("o"))
        ]

    def test_select_star(self):
        q = parse_query("SELECT * WHERE { ?s ?p ?o }")
        assert q.select_variables is None
        assert q.projected_variables() == [Variable("o"), Variable("p"), Variable("s")]

    def test_ask(self):
        q = parse_query("ASK { ?s <http://p> ?o }")
        assert q.form == "ASK"

    def test_prefixes(self):
        q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:knows ex:tim }"
        )
        pattern = q.triple_patterns()[0]
        assert pattern.predicate == IRI("http://ex/knows")
        assert pattern.object == IRI("http://ex/tim")

    def test_well_known_prefixes_preloaded(self):
        q = parse_query("SELECT ?s WHERE { ?s rdf:type ub:Course }")
        pattern = q.triple_patterns()[0]
        assert "rdf-syntax-ns#type" in pattern.predicate.value
        assert "univ-bench" in pattern.object.value

    def test_a_keyword(self):
        q = parse_query("SELECT ?s WHERE { ?s a <http://C> }")
        assert "type" in q.triple_patterns()[0].predicate.value

    def test_semicolon_and_comma_abbreviations(self):
        q = parse_query(
            "SELECT * WHERE { ?s <http://p> ?a , ?b ; <http://q> ?c . }"
        )
        patterns = q.triple_patterns()
        assert len(patterns) == 3
        assert all(p.subject == Variable("s") for p in patterns)
        assert patterns[0].predicate == patterns[1].predicate == IRI("http://p")
        assert patterns[2].predicate == IRI("http://q")

    def test_literals(self):
        q = parse_query(
            'SELECT * WHERE { ?s <http://p> "text" . ?s <http://q> 42 . '
            '?s <http://r> 3.5 . ?s <http://t> "x"@en . }'
        )
        objects = [p.object for p in q.triple_patterns()]
        assert objects[0] == Literal("text")
        assert objects[1] == Literal("42", datatype=XSD_INTEGER)
        assert objects[3] == Literal("x", language="en")

    def test_distinct_limit_offset_order(self):
        q = parse_query(
            "SELECT DISTINCT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) LIMIT 10 OFFSET 5"
        )
        assert q.distinct
        assert q.limit == 10
        assert q.offset == 5
        assert q.order_by == [(Variable("s"), False)]

    def test_count_star(self):
        q = parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }")
        assert q.aggregates[0].alias == Variable("c")
        assert q.aggregates[0].argument is None

    def test_count_distinct_variable(self):
        q = parse_query("SELECT (COUNT(DISTINCT ?s) AS ?c) WHERE { ?s ?p ?o }")
        assert q.aggregates[0].distinct
        assert q.aggregates[0].argument == Variable("s")


class TestGroupElements:
    def test_optional(self):
        q = parse_query(
            "SELECT * WHERE { ?s <http://p> ?o . OPTIONAL { ?o <http://q> ?x } }"
        )
        optionals = [e for e in q.where.elements if isinstance(e, OptionalPattern)]
        assert len(optionals) == 1
        assert len(optionals[0].group.triple_patterns()) == 1

    def test_union(self):
        q = parse_query(
            "SELECT * WHERE { { ?s <http://p> ?o } UNION { ?s <http://q> ?o } }"
        )
        unions = [e for e in q.where.elements if isinstance(e, UnionPattern)]
        assert len(unions) == 1
        assert len(unions[0].branches) == 2

    def test_three_way_union(self):
        q = parse_query(
            "SELECT * WHERE { { ?s <http://p> ?o } UNION { ?s <http://q> ?o } "
            "UNION { ?s <http://r> ?o } }"
        )
        union = next(e for e in q.where.elements if isinstance(e, UnionPattern))
        assert len(union.branches) == 3

    def test_values_single_variable(self):
        q = parse_query(
            "SELECT * WHERE { VALUES ?x { <http://a> <http://b> } ?x <http://p> ?o }"
        )
        values = next(e for e in q.where.elements if isinstance(e, ValuesBlock))
        assert values.variables == [Variable("x")]
        assert len(values.rows) == 2

    def test_values_multi_variable_with_undef(self):
        q = parse_query(
            "SELECT * WHERE { VALUES (?x ?y) { (<http://a> UNDEF) (<http://b> <http://c>) } }"
        )
        values = next(e for e in q.where.elements if isinstance(e, ValuesBlock))
        assert values.rows[0][1] is None
        assert values.rows[1] == (IRI("http://b"), IRI("http://c"))

    def test_subselect(self):
        q = parse_query(
            "SELECT ?s WHERE { ?s <http://p> ?o { SELECT ?o WHERE { ?o <http://q> ?z } } }"
        )
        subs = [e for e in q.where.elements if isinstance(e, SubSelect)]
        assert len(subs) == 1

    def test_filter_not_exists(self):
        q = parse_query(
            "SELECT ?p WHERE { ?s <http://adv> ?p . "
            "FILTER NOT EXISTS { ?p <http://teach> ?c } } LIMIT 1"
        )
        assert len(q.where.filters) == 1
        expr = q.where.filters[0]
        assert isinstance(expr, ExistsExpr) and expr.negated
        assert q.limit == 1

    def test_filter_not_exists_with_inner_select_normalized(self):
        q = parse_query(
            "SELECT ?p WHERE { ?s <http://adv> ?p . "
            "FILTER NOT EXISTS { SELECT ?p WHERE { ?p <http://teach> ?c } } }"
        )
        expr = q.where.filters[0]
        assert isinstance(expr, ExistsExpr)
        # normalized to a plain group containing one triple pattern
        assert len(expr.group.triple_patterns()) == 1

    def test_filter_comparison(self):
        q = parse_query("SELECT * WHERE { ?s <http://p> ?v . FILTER(?v > 5) }")
        assert len(q.where.filters) == 1

    def test_filter_regex_without_parens(self):
        q = parse_query('SELECT * WHERE { ?s <http://p> ?v . FILTER regex(?v, "a") }')
        assert len(q.where.filters) == 1

    def test_filter_boolean_combination(self):
        q = parse_query(
            'SELECT * WHERE { ?s <http://p> ?v . FILTER(?v > 1 && ?v < 9 || ?v = 42) }'
        )
        assert len(q.where.filters) == 1


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT WHERE { ?s ?p ?o }",
            "SELECT ?s { ?s ?p ?o ",
            "FOO ?s WHERE { ?s ?p ?o }",
            "SELECT ?s WHERE { ?s unknown:p ?o }",
            "SELECT ?s WHERE { ?s <http://p> ?o } LIMIT x",
            "SELECT ?s WHERE { ?s <http://p> ?o } junk",
            "ASK ?s { ?s ?p ?o }",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SparqlSyntaxError):
            parse_query(bad)


class TestSerializerRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT ?s ?o WHERE { ?s <http://p> ?o . }",
            "SELECT DISTINCT ?s WHERE { ?s ?p ?o } LIMIT 3 OFFSET 1",
            "ASK { ?s <http://p> <http://o> }",
            "SELECT * WHERE { { ?s <http://p> ?o } UNION { ?s <http://q> ?o } }",
            "SELECT * WHERE { ?s <http://p> ?o . OPTIONAL { ?o <http://q> ?x } }",
            'SELECT * WHERE { ?s <http://p> ?v . FILTER(?v > 5 && ?v != 7) }',
            "SELECT ?p WHERE { ?s <http://a> ?p . FILTER NOT EXISTS { ?p <http://t> ?c } } LIMIT 1",
            "SELECT * WHERE { VALUES (?x) { (<http://a>) (UNDEF) } ?x <http://p> ?o }",
            "SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }",
            'SELECT * WHERE { ?s <http://p> "lit"@en . ?s <http://q> 42 }',
            "SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) ?p",
        ],
    )
    def test_round_trip_is_stable(self, text):
        once = serialize_query(parse_query(text))
        twice = serialize_query(parse_query(once))
        assert once == twice

    def test_serialized_query_is_parseable(self):
        q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?s WHERE "
            "{ ?s ex:p ?o . FILTER EXISTS { ?o ex:q ?z } }"
        )
        text = serialize_query(q)
        assert "EXISTS" in text
        reparsed = parse_query(text)
        assert len(reparsed.where.filters) == 1
