"""Tests for the baseline engines: FedX, SPLENDID, HiBISCuS.

All engines must return the same answers on the paper's running example;
their *cost profiles* must differ in the paper's direction (FedX sends
far more requests than Lusail on same-schema endpoints)."""

import pytest

from repro.baselines import FedXEngine, HibiscusEngine, SplendidEngine
from repro.core import LusailEngine
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import Federation
from repro.rdf import IRI, Triple, parse as nt_parse

from .conftest import QA_EXPECTED, QUERY_QA, build_paper_federation, result_values

ENGINES = [FedXEngine, SplendidEngine, HibiscusEngine]


@pytest.fixture
def federation():
    return build_paper_federation()


class TestCorrectnessParity:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_qa_answers(self, federation, engine_cls):
        engine = engine_cls(federation)
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "OK", outcome.error
        assert result_values(outcome.result) == QA_EXPECTED

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_ask_query(self, federation, engine_cls):
        ub = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
        outcome = engine_cls(federation).execute(
            f"ASK {{ ?s <{ub}advisor> ?p }}"
        )
        assert outcome.status == "OK"
        assert outcome.boolean is True

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_empty_answer(self, federation, engine_cls):
        outcome = engine_cls(federation).execute(
            "SELECT ?s WHERE { ?s <http://no/such/predicate> ?o }"
        )
        assert outcome.status == "OK"
        assert len(outcome.result) == 0

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_filter_and_limit(self, federation, engine_cls):
        ub = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
        query = (
            f"SELECT ?u ?a WHERE {{ ?u <{ub}address> ?a . "
            f'FILTER regex(?a, "X") }} LIMIT 1'
        )
        outcome = engine_cls(federation).execute(query)
        assert outcome.status == "OK", outcome.error
        assert len(outcome.result) == 1
        assert result_values(outcome.result) == {("http://mit.edu/MIT", "XXX")}

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_optional(self, federation, engine_cls):
        ub = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
        rdf = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        query = (
            f"SELECT ?p ?u WHERE {{ ?p <{rdf}> <{ub}AssociateProfessor> . "
            f"OPTIONAL {{ ?p <{ub}PhDDegreeFrom> ?u }} }}"
        )
        outcome = engine_cls(federation).execute(query)
        assert outcome.status == "OK", outcome.error
        values = result_values(outcome.result)
        # Ann has no PhD triple -> unbound ?u
        assert ("http://mit.edu/Ann", None) in values
        assert ("http://cmu.edu/Tim", "http://mit.edu/MIT") in values

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_union(self, federation, engine_cls):
        ub = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
        query = (
            f"SELECT ?x WHERE {{ {{ ?x <{ub}teacherOf> ?c }} UNION "
            f"{{ ?x <{ub}address> ?a }} }}"
        )
        outcome = engine_cls(federation).execute(query)
        assert outcome.status == "OK", outcome.error
        names = {row[0] for row in result_values(outcome.result)}
        assert "http://mit.edu/Ben" in names
        assert "http://cmu.edu/CMU" in names


class TestCostProfiles:
    def test_fedx_sends_more_requests_than_lusail(self):
        """Same-schema endpoints: FedX finds no exclusive groups and
        bound-joins pattern by pattern; Lusail ships whole subqueries.
        (Figure 9's effect — needs realistic data volume, so LUBM.)"""
        from repro.datasets.lubm import LubmGenerator, QUERY_Q2

        federation = LubmGenerator(universities=2).build_federation()
        fedx_engine = FedXEngine(federation)
        lusail_engine = LusailEngine(federation)
        # warm both engines' source-selection / check caches, as the paper
        # does ("all systems are allowed to cache ... source selection")
        fedx_engine.execute(QUERY_Q2)
        lusail_engine.execute(QUERY_Q2)
        fedx = fedx_engine.execute(QUERY_Q2)
        lusail = lusail_engine.execute(QUERY_Q2)
        assert fedx.status == lusail.status == "OK"
        assert fedx.metrics.requests > 10 * lusail.metrics.requests

    def test_fedx_timeout_reported(self, federation):
        outcome = FedXEngine(federation).execute(QUERY_QA, timeout_seconds=1e-9)
        assert outcome.status == "TO"

    def test_fedx_memory_limit_reported(self, federation):
        outcome = FedXEngine(federation).execute(
            QUERY_QA, max_intermediate_rows=1
        )
        assert outcome.status == "OOM"


class TestSplendidIndex:
    def test_preprocessing_time_scales_with_data(self):
        small = build_paper_federation()
        engine = SplendidEngine(small)
        seconds_small = engine.preprocess()
        bigger = Federation(
            [
                LocalEndpoint.from_triples(
                    "big",
                    [
                        Triple(
                            IRI(f"http://x/s{i}"),
                            IRI("http://x/p"),
                            IRI(f"http://x/o{i}"),
                        )
                        for i in range(5000)
                    ],
                )
            ],
            network=LOCAL_CLUSTER,
        )
        seconds_big = SplendidEngine(bigger).preprocess()
        assert seconds_big > seconds_small

    def test_index_source_selection_avoids_asks(self, federation):
        engine = SplendidEngine(federation)
        engine.preprocess()
        outcome = engine.execute(QUERY_QA)
        assert outcome.status == "OK"
        # all patterns have unbound subject/object -> no ASKs at all
        assert outcome.metrics.ask_requests == 0

    def test_estimates_reflect_predicate_counts(self, federation):
        from repro.rdf import TriplePattern, UB, Variable

        engine = SplendidEngine(federation)
        engine.preprocess()
        advisor = TriplePattern(Variable("s"), UB.advisor, Variable("p"))
        # ep1 has 2 advisor edges (Lee, Sam), ep2 has 2 (Kim twice)
        assert engine.estimate(advisor, ["ep1", "ep2"]) == 4


class TestHibiscusPruning:
    def test_prunes_disjoint_authorities(self):
        """drug->target at ep_a only links ep_a authorities; ep_b's version
        links ep_b authorities; a join through a bound ep_a URI prunes
        ep_b."""
        ep_a = """
        <http://a.org/d1> <http://v/target> <http://a.org/t1> .
        <http://a.org/t1> <http://v/name> "T1" .
        """
        ep_b = """
        <http://b.org/d9> <http://v/target> <http://b.org/t9> .
        <http://b.org/t9> <http://v/name> "T9" .
        """
        federation = Federation(
            [
                LocalEndpoint.from_triples("ep_a", nt_parse(ep_a)),
                LocalEndpoint.from_triples("ep_b", nt_parse(ep_b)),
            ],
            network=LOCAL_CLUSTER,
        )
        hibiscus = HibiscusEngine(federation)
        hibiscus.preprocess()
        fedx = FedXEngine(federation)
        query = (
            "SELECT ?t ?n WHERE { <http://a.org/d1> <http://v/target> ?t . "
            "?t <http://v/name> ?n }"
        )
        outcome_h = hibiscus.execute(query)
        outcome_f = fedx.execute(query)
        assert outcome_h.status == outcome_f.status == "OK"
        assert result_values(outcome_h.result) == result_values(outcome_f.result)
        assert outcome_h.metrics.select_requests <= outcome_f.metrics.select_requests

    def test_no_pruning_when_authorities_overlap(self, federation):
        """LUBM-style interlinks share authorities: HiBISCuS keeps all
        sources and behaves like FedX."""
        hibiscus = HibiscusEngine(federation)
        hibiscus.preprocess()
        outcome = hibiscus.execute(QUERY_QA)
        assert outcome.status == "OK"
        assert result_values(outcome.result) == QA_EXPECTED
