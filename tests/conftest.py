"""Shared fixtures: the paper's running example federation (Figures 1-6).

Two university endpoints with the LUBM-style schema:

- EP1 (MIT): grad students Lee and Sam; professors Ben (advises Lee,
  teaches c1) and Ann (advises Sam, teaches nothing — the paper's
  "extraneous computation" witness that makes ?P a GJV); Ben got his PhD
  from MIT (local); MIT's address is "XXX".
- EP2 (CMU): grad student Kim advised by Joy and Tim; Joy teaches c2,
  Tim teaches c3, Kim takes both; Joy's PhD is from CMU (local) but
  Tim's PhD is from MIT — the cross-endpoint interlink that makes ?U a
  GJV; CMU's address is "CCCC".

The paper's query Q_a over this federation has exactly three answers:
(Kim, Joy, CMU, "CCCC"), (Kim, Tim, MIT, "XXX"), (Lee, Ben, MIT, "XXX").
"""

import pytest

from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import Federation
from repro.rdf import parse as nt_parse

UB = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

EP1_TRIPLES = f"""
<http://mit.edu/Lee> <{RDF_TYPE}> <{UB}GraduateStudent> .
<http://mit.edu/Sam> <{RDF_TYPE}> <{UB}GraduateStudent> .
<http://mit.edu/Ben> <{RDF_TYPE}> <{UB}AssociateProfessor> .
<http://mit.edu/Ann> <{RDF_TYPE}> <{UB}AssociateProfessor> .
<http://mit.edu/c1> <{RDF_TYPE}> <{UB}GraduateCourse> .
<http://mit.edu/Lee> <{UB}advisor> <http://mit.edu/Ben> .
<http://mit.edu/Sam> <{UB}advisor> <http://mit.edu/Ann> .
<http://mit.edu/Ben> <{UB}teacherOf> <http://mit.edu/c1> .
<http://mit.edu/Lee> <{UB}takesCourse> <http://mit.edu/c1> .
<http://mit.edu/Sam> <{UB}takesCourse> <http://mit.edu/c1> .
<http://mit.edu/Ben> <{UB}PhDDegreeFrom> <http://mit.edu/MIT> .
<http://mit.edu/MIT> <{UB}address> "XXX" .
"""

EP2_TRIPLES = f"""
<http://cmu.edu/Kim> <{RDF_TYPE}> <{UB}GraduateStudent> .
<http://cmu.edu/Joy> <{RDF_TYPE}> <{UB}AssociateProfessor> .
<http://cmu.edu/Tim> <{RDF_TYPE}> <{UB}AssociateProfessor> .
<http://cmu.edu/c2> <{RDF_TYPE}> <{UB}GraduateCourse> .
<http://cmu.edu/c3> <{RDF_TYPE}> <{UB}GraduateCourse> .
<http://cmu.edu/Kim> <{UB}advisor> <http://cmu.edu/Joy> .
<http://cmu.edu/Kim> <{UB}advisor> <http://cmu.edu/Tim> .
<http://cmu.edu/Joy> <{UB}teacherOf> <http://cmu.edu/c2> .
<http://cmu.edu/Tim> <{UB}teacherOf> <http://cmu.edu/c3> .
<http://cmu.edu/Kim> <{UB}takesCourse> <http://cmu.edu/c2> .
<http://cmu.edu/Kim> <{UB}takesCourse> <http://cmu.edu/c3> .
<http://cmu.edu/Joy> <{UB}PhDDegreeFrom> <http://cmu.edu/CMU> .
<http://cmu.edu/Tim> <{UB}PhDDegreeFrom> <http://mit.edu/MIT> .
<http://cmu.edu/CMU> <{UB}address> "CCCC" .
"""

#: The paper's Figure-2 query.
QUERY_QA = f"""
SELECT ?S ?P ?U ?A WHERE {{
  ?S <{UB}advisor> ?P .
  ?S <{RDF_TYPE}> <{UB}GraduateStudent> .
  ?P <{UB}teacherOf> ?C .
  ?P <{RDF_TYPE}> <{UB}AssociateProfessor> .
  ?S <{UB}takesCourse> ?C .
  ?C <{RDF_TYPE}> <{UB}GraduateCourse> .
  ?P <{UB}PhDDegreeFrom> ?U .
  ?U <{UB}address> ?A .
}}
"""

QA_EXPECTED = {
    ("http://cmu.edu/Kim", "http://cmu.edu/Joy", "http://cmu.edu/CMU", "CCCC"),
    ("http://cmu.edu/Kim", "http://cmu.edu/Tim", "http://mit.edu/MIT", "XXX"),
    ("http://mit.edu/Lee", "http://mit.edu/Ben", "http://mit.edu/MIT", "XXX"),
}


def build_paper_federation(network=LOCAL_CLUSTER) -> Federation:
    return Federation(
        [
            LocalEndpoint.from_triples("ep1", nt_parse(EP1_TRIPLES)),
            LocalEndpoint.from_triples("ep2", nt_parse(EP2_TRIPLES)),
        ],
        network=network,
    )


@pytest.fixture
def paper_federation() -> Federation:
    return build_paper_federation()


def result_values(result):
    """Rows as tuples of plain strings (IRIs and literal lexical forms)."""
    values = set()
    for row in result.rows:
        values.add(tuple(
            None if cell is None
            else getattr(cell, "value", None) or getattr(cell, "lexical", None)
            for cell in row
        ))
    return values
