"""Tests for the futures-based request scheduler (pipelined ERH).

The scheduler replaces the per-batch cost formula with a virtual-clock
makespan simulation: every endpoint is a serialized lane, at most
``pool_size`` requests run concurrently, and a request's virtual finish
time is ``max(submit clock, lane free, worker free) + cost``.  These
tests pin the makespan properties (lane serialization, cross-endpoint
overlap, pool cap, wave overlap through early submission) and the
future API (exceptions at ``result()``, idempotent resolution, the new
metrics counters).
"""

import pytest

from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import ElasticRequestHandler, Federation, Request
from repro.rdf import parse as nt_parse

EP_TEMPLATE = """
<http://u{i}/kim> <http://ub/advisor> <http://u{i}/tim> .
<http://u{i}/tim> <http://ub/teacherOf> <http://u{i}/c1> .
"""

ASK = "ASK { ?s ?p ?o }"
SELECT = "SELECT ?s WHERE { ?s <http://ub/advisor> ?o }"


def make_federation(endpoints=3):
    return Federation(
        [
            LocalEndpoint.from_triples(
                f"ep{i}", nt_parse(EP_TEMPLATE.format(i=i))
            )
            for i in range(endpoints)
        ],
        network=LOCAL_CLUSTER,
    )


class TestMakespan:
    def test_same_lane_serializes(self):
        """Three requests to one endpoint cost the sum of their costs."""
        federation = make_federation(1)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx, pool_size=8)
        futures = [
            handler.submit(Request("ep0", ASK, "ASK")) for _ in range(3)
        ]
        responses = handler.gather(futures)
        total = sum(r.cost_seconds for r in responses)
        assert ctx.metrics.virtual_seconds == pytest.approx(total)

    def test_distinct_lanes_overlap(self):
        """One request per endpoint costs the max, not the sum."""
        federation = make_federation(3)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx, pool_size=8)
        futures = [
            handler.submit(Request(f"ep{i}", ASK, "ASK")) for i in range(3)
        ]
        responses = handler.gather(futures)
        costs = [r.cost_seconds for r in responses]
        assert ctx.metrics.virtual_seconds == pytest.approx(max(costs))
        assert ctx.metrics.virtual_seconds < sum(costs)

    def test_pool_size_one_serializes_everything(self):
        federation = make_federation(3)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx, pool_size=1)
        futures = [
            handler.submit(Request(f"ep{i}", ASK, "ASK")) for i in range(3)
        ]
        responses = handler.gather(futures)
        total = sum(r.cost_seconds for r in responses)
        assert ctx.metrics.virtual_seconds == pytest.approx(total)

    def test_early_submission_overlaps_waves(self):
        """Submitting wave B before gathering wave A lets B's lanes start
        while A's slow lane is still busy; a gather barrier between the
        waves forces B to start at A's makespan."""
        # Barrier: two sequential single-endpoint batches.
        federation = make_federation(2)
        ctx_barrier = federation.make_context()
        barrier = ElasticRequestHandler(federation, ctx_barrier, pool_size=8)
        barrier.execute_batch([Request("ep0", ASK, "ASK")])
        barrier.execute_batch([Request("ep1", ASK, "ASK")])
        # Pipelined: both submitted before any resolution.
        ctx_pipe = federation.make_context()
        pipelined = ElasticRequestHandler(federation, ctx_pipe, pool_size=8)
        futures = [
            pipelined.submit(Request("ep0", ASK, "ASK")),
            pipelined.submit(Request("ep1", ASK, "ASK")),
        ]
        pipelined.gather(futures)
        assert (
            ctx_pipe.metrics.virtual_seconds
            < ctx_barrier.metrics.virtual_seconds
        )

    def test_gather_matches_execute_batch(self):
        """execute_batch is exactly gather(submit_all(...))."""
        federation = make_federation(2)
        requests = [
            Request("ep0", ASK, "ASK"),
            Request("ep1", ASK, "ASK"),
            Request("ep0", SELECT, "SELECT"),
        ]
        ctx_batch = federation.make_context()
        ElasticRequestHandler(federation, ctx_batch).execute_batch(requests)
        ctx_futures = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx_futures)
        handler.gather(handler.submit_all(requests))
        assert ctx_batch.metrics.virtual_seconds == pytest.approx(
            ctx_futures.metrics.virtual_seconds
        )
        assert ctx_batch.metrics.requests == ctx_futures.metrics.requests

    def test_out_of_order_resolution_never_rewinds_clock(self):
        """Resolving a later future first schedules everything before it;
        earlier futures then resolve without advancing the clock."""
        federation = make_federation(2)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx)
        first = handler.submit(Request("ep0", ASK, "ASK"))
        second = handler.submit(Request("ep1", ASK, "ASK"))
        second.result()
        after_second = ctx.metrics.virtual_seconds
        first.result()
        assert ctx.metrics.virtual_seconds == after_second
        assert first.done() and second.done()


class TestFutureApi:
    def test_result_is_idempotent(self):
        federation = make_federation(1)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx)
        future = handler.submit(Request("ep0", ASK, "ASK"))
        assert not future.done()
        first = future.result()
        clock = ctx.metrics.virtual_seconds
        assert future.done()
        assert future.result() is first
        assert ctx.metrics.virtual_seconds == clock
        assert ctx.metrics.requests == 1

    def test_unknown_endpoint_raises_at_result(self):
        federation = make_federation(1)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx)
        future = handler.submit(Request("nope", ASK, "ASK"))
        with pytest.raises(KeyError):
            future.result()
        # the exception is sticky and re-raised on every call
        with pytest.raises(KeyError):
            future.result()

    def test_failed_future_does_not_block_others(self):
        federation = make_federation(1)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx)
        bad = handler.submit(Request("nope", ASK, "ASK"))
        good = handler.submit(Request("ep0", ASK, "ASK"))
        assert good.result().value is not None
        with pytest.raises(KeyError):
            bad.result()


class TestSchedulerCounters:
    def test_inflight_high_water_tracks_window(self):
        federation = make_federation(2)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx)
        futures = [
            handler.submit(Request(f"ep{i % 2}", ASK, "ASK"))
            for i in range(5)
        ]
        assert ctx.metrics.inflight_high_water == 5
        handler.gather(futures)
        assert ctx.metrics.inflight_high_water == 5

    def test_waves_count_submission_bursts(self):
        federation = make_federation(2)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx)
        # burst 1: two requests submitted into an empty window
        handler.gather(handler.submit_all(
            [Request("ep0", ASK, "ASK"), Request("ep1", ASK, "ASK")]
        ))
        # burst 2: one request after the window drained
        handler.execute(Request("ep0", ASK, "ASK"))
        assert ctx.metrics.scheduler_waves == 2

    def test_lane_busy_seconds_sum_to_costs(self):
        federation = make_federation(2)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx)
        responses = handler.gather(handler.submit_all([
            Request("ep0", ASK, "ASK"),
            Request("ep0", ASK, "ASK"),
            Request("ep1", ASK, "ASK"),
        ]))
        by_lane = {}
        for response in responses:
            by_lane.setdefault(response.request.endpoint_id, 0.0)
            by_lane[response.request.endpoint_id] += response.cost_seconds
        assert ctx.metrics.lane_busy_seconds == pytest.approx(by_lane)
        assert 0.0 < ctx.metrics.lane_utilization() <= 1.0

    def test_snapshot_includes_scheduler_counters(self):
        federation = make_federation(1)
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx)
        handler.execute(Request("ep0", ASK, "ASK"))
        snapshot = ctx.metrics.snapshot()
        assert snapshot["inflight_high_water"] == 1
        assert snapshot["scheduler_waves"] == 1
        assert "lane_utilization" in snapshot
