"""SPARQL-protocol serving layer: wire format, HTTP server, tenant QoS.

Protocol tests pin the SPARQL JSON results format (typed literals,
language tags, blank nodes, unbound cells) and its streaming chunker;
server tests boot a real :class:`LusailHTTPServer` on a loopback port
and drive it with stdlib ``urllib`` — documents served over HTTP must
be bit-identical to a direct in-process ``execute()``.  Session tests
pin the reserve-protecting fair-share admission invariants.
"""

import contextlib
import json
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.core import LusailEngine
from repro.endpoint import LocalEndpoint
from repro.federation import Federation
from repro.rdf import BNode, IRI, Literal, Variable
from repro.rdf import parse as nt_parse
from repro.serving import (
    SPARQL_RESULTS_JSON,
    QuerySessionManager,
    TenantClass,
    UnknownTenantError,
    boolean_document,
    document_tail,
    iter_results_chunks,
    iter_streaming_chunks,
    negotiate,
    parse_results_document,
    results_document,
    start_server,
    term_from_json,
    term_to_json,
)
from repro.sparql.results import ResultSet

from .conftest import (
    QA_EXPECTED,
    QUERY_QA,
    build_paper_federation,
    result_values,
)

XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"

#: an endpoint whose answers exercise every term shape on the wire
TYPED_TRIPLES = f"""
_:alice <http://x/name> "Alice" .
_:alice <http://x/label> "chat"@fr .
_:alice <http://x/age> "42"^^<{XSD_INT}> .
<http://x/bob> <http://x/name> "Bob" .
<http://x/bob> <http://x/knows> _:alice .
"""

TYPED_QUERY = """
SELECT ?s ?name ?label ?age WHERE {
  ?s <http://x/name> ?name .
  OPTIONAL { ?s <http://x/label> ?label }
  OPTIONAL { ?s <http://x/age> ?age }
}
"""


def typed_federation() -> Federation:
    return Federation([
        LocalEndpoint.from_triples("typed", nt_parse(TYPED_TRIPLES)),
    ])


@contextlib.contextmanager
def serve(federation=None, tenants=(), max_concurrent=8):
    fed = federation if federation is not None else build_paper_federation()
    engine = LusailEngine(
        fed, use_threads=True, reset_request_windows=False
    )
    manager = QuerySessionManager(
        engine, tenants=tenants, max_concurrent=max_concurrent
    )
    server, _thread = start_server(manager)
    try:
        yield server, manager
    finally:
        server.shutdown()
        server.server_close()


def http(url, data=None, headers=None, method=None):
    """(status, headers, body) for one request; HTTP errors returned,
    not raised."""
    request = urllib.request.Request(
        url, data=data, headers=headers or {}, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def sparql_url(server, query, **params):
    params["query"] = query
    return server.url + "/sparql?" + urllib.parse.urlencode(params)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------

class TestTermJson:
    @pytest.mark.parametrize("term,cell", [
        (IRI("http://x/a"), {"type": "uri", "value": "http://x/a"}),
        (BNode("b0"), {"type": "bnode", "value": "b0"}),
        (Literal("plain"), {"type": "literal", "value": "plain"}),
        (Literal("chat", language="fr"),
         {"type": "literal", "value": "chat", "xml:lang": "fr"}),
        (Literal("5", datatype=XSD_INT),
         {"type": "literal", "value": "5", "datatype": XSD_INT}),
    ])
    def test_round_trip(self, term, cell):
        assert term_to_json(term) == cell
        assert term_from_json(cell) == term

    def test_legacy_typed_literal_accepted(self):
        cell = {"type": "typed-literal", "value": "5", "datatype": XSD_INT}
        assert term_from_json(cell) == Literal("5", datatype=XSD_INT)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            term_from_json({"type": "graph", "value": "x"})

    def test_variable_is_not_a_ground_term(self):
        with pytest.raises(TypeError):
            term_to_json(Variable("x"))


class TestResultsDocument:
    def _result(self):
        return ResultSet(
            (Variable("s"), Variable("o")),
            [
                (IRI("http://x/a"), Literal("chat", language="fr")),
                (BNode("b0"), Literal("5", datatype=XSD_INT)),
                (IRI("http://x/b"), None),  # unbound cell
            ],
        )

    def test_document_round_trip_preserves_everything(self):
        result = self._result()
        document = results_document(result)
        rebuilt = parse_results_document(document)
        assert [v.name for v in rebuilt.variables] == ["s", "o"]
        assert rebuilt.rows == result.rows

    def test_unbound_cells_absent_from_bindings(self):
        document = results_document(self._result())
        assert document["results"]["bindings"][2] == {
            "s": {"type": "uri", "value": "http://x/b"}
        }

    def test_boolean_document(self):
        assert boolean_document(True) == {"head": {}, "boolean": True}
        assert boolean_document(False) == {"head": {}, "boolean": False}

    def test_chunks_concatenate_to_the_full_document(self):
        result = self._result()
        for chunk_rows in (1, 2, 256):
            body = b"".join(iter_results_chunks(result, chunk_rows))
            assert json.loads(body) == results_document(result)

    def test_chunking_is_bounded(self):
        result = ResultSet(
            (Variable("s"),),
            [(IRI(f"http://x/{i}"),) for i in range(10)],
        )
        pieces = list(iter_results_chunks(result, chunk_rows=3))
        # header + ceil(10/3) row chunks + closer
        assert len(pieces) == 1 + 4 + 1
        assert json.loads(b"".join(pieces)) == results_document(result)

    def test_chunk_rows_must_be_positive(self):
        with pytest.raises(ValueError):
            list(iter_results_chunks(self._result(), chunk_rows=0))

    def test_empty_result_is_a_valid_document(self):
        empty = ResultSet((Variable("s"),), [])
        body = b"".join(iter_results_chunks(empty))
        assert json.loads(body) == {
            "head": {"vars": ["s"]},
            "results": {"bindings": []},
        }


class TestNegotiate:
    @pytest.mark.parametrize("accept", [
        None, "", SPARQL_RESULTS_JSON, "application/json", "*/*",
        "application/*", "text/html, */*;q=0.1",
        "application/sparql-results+json; q=0.9",
    ])
    def test_acceptable(self, accept):
        assert negotiate(accept) == SPARQL_RESULTS_JSON

    @pytest.mark.parametrize("accept", [
        "text/csv", "application/sparql-results+xml", "text/html",
    ])
    def test_unacceptable(self, accept):
        assert negotiate(accept) is None


# ----------------------------------------------------------------------
# HTTP server
# ----------------------------------------------------------------------

class TestServerEndToEnd:
    def test_get_is_bit_identical_to_direct_execute(self):
        federation = build_paper_federation()
        direct = LusailEngine(federation).execute(QUERY_QA)
        assert direct.status == "OK"
        expected = results_document(direct.result)
        with serve(federation) as (server, _manager):
            status, headers, body = http(
                sparql_url(server, QUERY_QA),
                headers={"Accept": SPARQL_RESULTS_JSON},
            )
        assert status == 200
        assert headers["Content-Type"] == SPARQL_RESULTS_JSON
        assert headers.get("Transfer-Encoding") == "chunked"
        assert json.loads(body) == expected
        assert result_values(parse_results_document(json.loads(body))) \
            == QA_EXPECTED

    def test_typed_terms_survive_the_wire(self):
        """Language tags, typed literals, bnodes, and unbound OPTIONAL
        cells all round-trip through HTTP bit-identically."""
        federation = typed_federation()
        direct = LusailEngine(federation).execute(TYPED_QUERY)
        assert direct.status == "OK"
        expected = results_document(direct.result)
        # the fixture really exercises every term shape
        flat = json.dumps(expected)
        assert "xml:lang" in flat
        assert "bnode" in flat and "datatype" in flat
        assert any(
            len(binding) < 4 for binding in expected["results"]["bindings"]
        ), "expected at least one unbound OPTIONAL cell"
        with serve(federation) as (server, _manager):
            status, _headers, body = http(sparql_url(server, TYPED_QUERY))
        assert status == 200
        assert json.loads(body) == expected
        assert parse_results_document(json.loads(body)).rows \
            == direct.result.rows

    def test_post_form_and_raw_query_bodies(self):
        federation = build_paper_federation()
        expected = results_document(
            LusailEngine(federation).execute(QUERY_QA).result
        )
        with serve(federation) as (server, _manager):
            status, _h, body = http(
                server.url + "/sparql",
                data=urllib.parse.urlencode({"query": QUERY_QA}).encode(),
                headers={
                    "Content-Type": "application/x-www-form-urlencoded"
                },
            )
            assert status == 200 and json.loads(body) == expected
            status, _h, body = http(
                server.url + "/sparql",
                data=QUERY_QA.encode(),
                headers={"Content-Type": "application/sparql-query"},
            )
            assert status == 200 and json.loads(body) == expected

    def test_ask_query_returns_boolean_document(self):
        with serve() as (server, _manager):
            status, _h, body = http(
                sparql_url(server, "ASK { ?s ?p ?o }")
            )
        assert status == 200
        assert json.loads(body) == {"head": {}, "boolean": True}

    def test_health_and_stats(self):
        with serve() as (server, _manager):
            status, _h, body = http(server.url + "/health")
            assert status == 200 and json.loads(body) == {"status": "ok"}
            http(sparql_url(server, "ASK { ?s ?p ?o }"))
            status, _h, body = http(server.url + "/stats")
            stats = json.loads(body)
        assert status == 200
        assert stats["tenants"]["public"]["completed"] == 1
        assert stats["max_concurrent"] == 8

    def test_error_codes(self):
        tenants = (TenantClass("gold", "secret"),)
        with serve(tenants=tenants) as (server, _manager):
            ask = "ASK { ?s ?p ?o }"
            key = {"X-API-Key": "secret"}
            cases = [
                # missing query parameter
                (http(server.url + "/sparql", headers=key), 400),
                # malformed query
                (http(sparql_url(server, "NOT SPARQL"), headers=key), 400),
                # malformed deadline
                (http(sparql_url(server, ask, deadline="soon"),
                      headers=key), 400),
                # unknown API key
                (http(sparql_url(server, ask)), 401),
                # unknown resource
                (http(server.url + "/nope", headers=key), 404),
                # nothing acceptable
                (http(sparql_url(server, ask),
                      headers={**key, "Accept": "text/csv"}), 406),
                # unreadable POST body type
                (http(server.url + "/sparql", data=b"{}",
                      headers={**key, "Content-Type": "application/json"}),
                 415),
            ]
            for (status, _headers, _body), want in cases:
                assert status == want
            # api key via query parameter works too
            status, _h, body = http(sparql_url(server, ask, apikey="secret"))
            assert status == 200 and json.loads(body)["boolean"] is True

    def test_overload_returns_503_with_retry_after(self):
        with serve(max_concurrent=0) as (server, _manager):
            status, headers, body = http(
                sparql_url(server, "ASK { ?s ?p ?o }")
            )
        assert status == 503
        assert "Retry-After" in headers
        assert "shed" in json.loads(body)["error"]


# ----------------------------------------------------------------------
# Fair-share admission
# ----------------------------------------------------------------------

class _NoEngine:
    """Admission tests never reach the engine."""


def _manager(max_concurrent=4):
    return QuerySessionManager(
        _NoEngine(),
        tenants=[
            TenantClass("gold", "g", weight=3.0),
            TenantClass("bronze", "b", weight=1.0),
        ],
        max_concurrent=max_concurrent,
    )


class TestFairShareAdmission:
    def test_reserves_tile_the_pool_by_weight(self):
        manager = _manager()
        assert manager._reserve(manager.resolve("g")) == 3.0
        assert manager._reserve(manager.resolve("b")) == 1.0

    def test_flooder_is_capped_at_its_reserve_while_others_idle(self):
        """Borrowing never consumes capacity backing an unused reserve:
        a quiet tenant can walk into a flood and claim its full share."""
        manager = _manager()
        bronze = manager.resolve("b")
        admitted = sum(manager.try_admit(bronze) for _ in range(10))
        assert admitted == 1  # reserve 1, gold's 3 stay backed
        gold = manager.resolve("g")
        assert all(manager.try_admit(gold) for _ in range(3))
        stats = manager.stats()
        assert stats["tenants"]["gold"]["sheds"] == 0
        assert stats["tenants"]["bronze"]["sheds"] == 9
        # pool genuinely full now
        assert not manager.try_admit(gold)
        assert not manager.try_admit(bronze)

    def test_release_restores_admission(self):
        manager = _manager()
        bronze = manager.resolve("b")
        assert manager.try_admit(bronze)
        assert not manager.try_admit(bronze)
        manager.release(bronze)
        assert manager.try_admit(bronze)

    def test_single_tenant_uses_the_whole_pool(self):
        manager = QuerySessionManager(_NoEngine(), max_concurrent=4)
        tenant = manager.resolve(None)  # open access maps to "public"
        assert sum(manager.try_admit(tenant) for _ in range(6)) == 4

    def test_unknown_key_raises(self):
        manager = _manager()
        with pytest.raises(UnknownTenantError):
            manager.resolve("nope")

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ValueError):
            QuerySessionManager(_NoEngine(), tenants=[
                TenantClass("a", "k"), TenantClass("b", "k"),
            ])
        with pytest.raises(ValueError):
            QuerySessionManager(_NoEngine(), tenants=[
                TenantClass("a", "k1"), TenantClass("a", "k2"),
            ])

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            TenantClass("a", "k", weight=0.0)


# ----------------------------------------------------------------------
# Streaming over HTTP: stream=1, the x-lusail trailer, truncation
# ----------------------------------------------------------------------


def _read_streamed(server, query, **params):
    """(status, headers, arrivals) reading the body chunk by chunk."""
    import http.client as http_client

    params["stream"] = "1"
    split = urllib.parse.urlsplit(sparql_url(server, query, **params))
    conn = http_client.HTTPConnection(
        split.hostname, split.port, timeout=30
    )
    conn.request("GET", split.path + "?" + split.query)
    response = conn.getresponse()
    arrivals = []
    while True:
        piece = response.read1(65536)
        if not piece:
            break
        arrivals.append(piece)
    headers = dict(response.getheaders())
    conn.close()
    return response.status, headers, arrivals


class TestStreamingChunks:
    """The protocol-level streamed serializer and its failure framing."""

    def _batches(self):
        x = Variable("x")
        return [
            ResultSet((x,), [(IRI(f"http://x/{i}"),)]) for i in range(3)
        ]

    def test_concatenation_is_a_valid_document_with_trailer(self):
        x = Variable("x")
        pieces = list(iter_streaming_chunks(
            (x,), iter(self._batches()), lambda: {"status": "OK"}
        ))
        document = json.loads(b"".join(pieces))
        assert document["x-lusail"] == {"status": "OK"}
        assert len(document["results"]["bindings"]) == 3
        # the tolerant parser ignores the extra member
        assert len(parse_results_document(document)) == 3

    def test_mid_stream_failure_stays_well_formed(self):
        x = Variable("x")

        def exploding():
            yield ResultSet((x,), [(IRI("http://x/0"),)])
            raise RuntimeError("endpoint fell over")

        pieces = list(iter_streaming_chunks(
            (x,), exploding(), lambda: {"status": "OK"}
        ))
        document = json.loads(b"".join(pieces))  # must not raise
        assert document["x-lusail"]["status"] == "RE"
        assert document["x-lusail"]["truncated"] is True
        assert "endpoint fell over" in document["x-lusail"]["error"]
        assert len(document["results"]["bindings"]) == 1

    def test_document_tail_closes_at_any_point(self):
        x = Variable("x")
        pieces = list(iter_streaming_chunks(
            (x,), iter(self._batches()), lambda: {"status": "OK"}
        ))
        tail = document_tail({"status": "PARTIAL", "truncated": True})
        # a truncation after ANY piece boundary still parses
        for cut in range(1, len(pieces)):
            document = json.loads(b"".join(pieces[:cut]) + tail)
            assert document["x-lusail"]["truncated"] is True

    def test_empty_stream_is_valid(self):
        x = Variable("x")
        pieces = list(iter_streaming_chunks(
            (x,), iter(()), lambda: {"status": "OK"}
        ))
        document = json.loads(b"".join(pieces))
        assert document["results"]["bindings"] == []


class TestServerStreaming:
    def test_streamed_document_matches_materialized(self):
        federation = build_paper_federation()
        direct = LusailEngine(federation).execute(QUERY_QA)
        with serve(federation) as (server, manager):
            status, headers, arrivals = _read_streamed(server, QUERY_QA)
            stats = manager.stats()
        assert status == 200
        assert headers.get("X-Lusail-Streaming") == "1"
        document = json.loads(b"".join(arrivals))
        info = document["x-lusail"]
        assert info["status"] == "OK"
        assert info["complete"] is True
        assert info["ttfb_seconds"] <= info["virtual_seconds"]
        assert result_values(parse_results_document(document)) \
            == result_values(direct.result)
        assert stats["streaming"]["streams"] == 1
        assert stats["streaming"]["truncated"] == 0
        assert stats["streaming"]["batches_routed"] > 0
        assert stats["streaming"]["ttfb_p50_s"] is not None

    def test_first_bytes_precede_the_trailer(self):
        with serve() as (server, _manager):
            _status, _headers, arrivals = _read_streamed(server, QUERY_QA)
        assert len(arrivals) >= 2
        assert b"x-lusail" not in arrivals[0]
        assert b"x-lusail" in arrivals[-1]

    def test_stream_of_non_streamable_query_still_answers(self):
        """ORDER BY falls back to the materialized path but the
        stream=1 request is still served correctly."""
        query = QUERY_QA.rstrip() + "\nORDER BY ?S"
        with serve() as (server, _manager):
            status, _headers, arrivals = _read_streamed(server, query)
        assert status == 200
        document = json.loads(b"".join(arrivals))
        assert result_values(parse_results_document(document)) \
            == QA_EXPECTED

    def test_streamed_ask_uses_the_classic_path(self):
        with serve() as (server, _manager):
            status, headers, arrivals = _read_streamed(
                server, "ASK { ?s ?p ?o }"
            )
        assert status == 200
        assert headers.get("X-Lusail-Streaming") is None
        assert json.loads(b"".join(arrivals))["boolean"] is True

    def test_streamed_parse_error_is_a_400(self):
        with serve() as (server, _manager):
            status, _headers, _arrivals = _read_streamed(
                server, "NOT SPARQL"
            )
        assert status == 400

    def test_streaming_session_releases_its_slot(self):
        federation = build_paper_federation()
        engine = LusailEngine(
            federation, use_threads=True, reset_request_windows=False
        )
        manager = QuerySessionManager(engine, max_concurrent=1)
        session = manager.execute_streaming(QUERY_QA)
        rows = []
        for batch in session.batches():
            rows.extend(batch.rows)
        assert session.result.status == "OK"
        assert result_values(session.result.result) == QA_EXPECTED
        # the slot freed: a second streamed query admits immediately
        second = manager.execute_streaming(QUERY_QA)
        assert sum(len(b.rows) for b in second.batches()) == len(rows)
        stats = manager.stats()
        assert stats["streaming"]["streams"] == 2
        assert stats["tenants"]["public"]["completed"] == 2

    def test_closing_a_session_counts_truncation(self):
        federation = build_paper_federation()
        engine = LusailEngine(
            federation, use_threads=True, reset_request_windows=False
        )
        manager = QuerySessionManager(engine, max_concurrent=1)
        session = manager.execute_streaming(QUERY_QA)
        next(session.batches())
        session.close()
        assert session.truncated
        assert session.result.status == "PARTIAL"
        stats = manager.stats()
        assert stats["streaming"]["truncated"] == 1
        # the slot is back regardless of how the stream ended
        assert manager.execute_streaming(QUERY_QA) is not None
