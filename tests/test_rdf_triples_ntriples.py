"""Unit and property tests for triples, patterns, and N-Triples I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import (
    BNode,
    IRI,
    Literal,
    NTriplesError,
    Triple,
    TriplePattern,
    Variable,
    parse,
    parse_line,
    serialize,
)

S = IRI("http://ex/s")
P = IRI("http://ex/p")
O = IRI("http://ex/o")


class TestTriple:
    def test_rejects_variables(self):
        with pytest.raises(ValueError):
            Triple(Variable("s"), P, O)

    def test_equality(self):
        assert Triple(S, P, O) == Triple(S, P, O)
        assert Triple(S, P, O) != Triple(S, P, S)

    def test_n3(self):
        assert Triple(S, P, O).n3() == "<http://ex/s> <http://ex/p> <http://ex/o> ."

    def test_iteration(self):
        assert list(Triple(S, P, O)) == [S, P, O]


class TestTriplePattern:
    def test_variables(self):
        pattern = TriplePattern(Variable("s"), P, Variable("o"))
        assert pattern.variables() == {Variable("s"), Variable("o")}

    def test_match_binds_variables(self):
        pattern = TriplePattern(Variable("s"), P, Variable("o"))
        binding = pattern.matches(Triple(S, P, O))
        assert binding == {Variable("s"): S, Variable("o"): O}

    def test_match_constant_mismatch(self):
        pattern = TriplePattern(S, P, Variable("o"))
        assert pattern.matches(Triple(O, P, O)) is None

    def test_repeated_variable_must_agree(self):
        pattern = TriplePattern(Variable("x"), P, Variable("x"))
        assert pattern.matches(Triple(S, P, S)) is not None
        assert pattern.matches(Triple(S, P, O)) is None

    def test_substitute(self):
        pattern = TriplePattern(Variable("s"), P, Variable("o"))
        bound = pattern.substitute({Variable("s"): S})
        assert bound.subject == S
        assert bound.object == Variable("o")

    def test_is_ground(self):
        assert TriplePattern(S, P, O).is_ground()
        assert not TriplePattern(S, P, Variable("o")).is_ground()


class TestNTriplesParsing:
    def test_basic_triple(self):
        triple = parse_line("<http://ex/s> <http://ex/p> <http://ex/o> .")
        assert triple == Triple(S, P, O)

    def test_literal_with_language(self):
        triple = parse_line('<http://ex/s> <http://ex/p> "chat"@fr .')
        assert triple.object == Literal("chat", language="fr")

    def test_literal_with_datatype(self):
        line = '<http://ex/s> <http://ex/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        triple = parse_line(line)
        assert triple.object.numeric_value() == 5

    def test_bnode_subject(self):
        triple = parse_line("_:b1 <http://ex/p> <http://ex/o> .")
        assert triple.subject == BNode("b1")

    def test_escapes(self):
        triple = parse_line('<http://ex/s> <http://ex/p> "a\\"b\\nc\\u0041" .')
        assert triple.object.lexical == 'a"b\ncA'

    def test_comments_and_blanks_skipped(self):
        text = "# comment\n\n<http://ex/s> <http://ex/p> <http://ex/o> .\n"
        assert list(parse(text)) == [Triple(S, P, O)]

    @pytest.mark.parametrize(
        "bad",
        [
            "<http://ex/s> <http://ex/p> <http://ex/o>",  # no dot
            '"lit" <http://ex/p> <http://ex/o> .',  # literal subject
            "<http://ex/s> _:b <http://ex/o> .",  # bnode predicate
            "<http://ex/s> <http://ex/p> .",  # missing object
            '<http://ex/s> <http://ex/p> "open .',  # unterminated literal
        ],
    )
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(NTriplesError):
            parse_line(bad)


# ----------------------------------------------------------------------
# Property-based round-trip
# ----------------------------------------------------------------------

_iris = st.builds(
    lambda host, path: IRI(f"http://{host}.example.org/{path}"),
    st.text(alphabet="abcdefgh", min_size=1, max_size=8),
    st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=12),
)
_plain_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    max_size=40,
)
_literals = st.one_of(
    st.builds(Literal, _plain_text),
    st.builds(lambda t, lang: Literal(t, language=lang), _plain_text,
              st.sampled_from(["en", "fr", "de-DE"])),
    st.builds(Literal.integer, st.integers(-10**6, 10**6)),
)
_bnodes = st.builds(BNode, st.text(alphabet="abcxyz0123456789", min_size=1, max_size=8))
_subjects = st.one_of(_iris, _bnodes)
_objects = st.one_of(_iris, _bnodes, _literals)
_triples = st.builds(Triple, _subjects, _iris, _objects)


@settings(max_examples=200, deadline=None)
@given(st.lists(_triples, max_size=20))
def test_ntriples_round_trip(triples):
    text = serialize(triples)
    parsed = list(parse(text))
    assert parsed == triples
