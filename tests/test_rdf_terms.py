"""Unit tests for the RDF term model."""

import pytest

from repro.rdf import (
    BNode,
    IRI,
    Literal,
    Variable,
    XSD_BOOLEAN,
    XSD_INTEGER,
)


class TestIRI:
    def test_equality_and_hash(self):
        assert IRI("http://a") == IRI("http://a")
        assert IRI("http://a") != IRI("http://b")
        assert hash(IRI("http://a")) == hash(IRI("http://a"))

    def test_n3(self):
        assert IRI("http://example.org/x").n3() == "<http://example.org/x>"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_immutable(self):
        iri = IRI("http://a")
        with pytest.raises(AttributeError):
            iri.value = "http://b"

    def test_authority_http(self):
        assert IRI("http://drugbank.org/drugs/DB1").authority == "http://drugbank.org"

    def test_authority_urn(self):
        assert IRI("urn:isbn:12345").authority == "urn"

    def test_authority_no_path(self):
        assert IRI("http://example.org").authority == "http://example.org"


class TestLiteral:
    def test_plain(self):
        lit = Literal("hello")
        assert lit.n3() == '"hello"'
        assert lit.datatype is None and lit.language is None

    def test_language_tagged(self):
        lit = Literal("bonjour", language="fr")
        assert lit.n3() == '"bonjour"@fr'

    def test_typed(self):
        lit = Literal("5", datatype=XSD_INTEGER)
        assert lit.n3().endswith("integer>")
        assert lit.numeric_value() == 5

    def test_datatype_and_language_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD_INTEGER, language="en")

    def test_escaping(self):
        lit = Literal('say "hi"\nplease\t\\end')
        n3 = lit.n3()
        assert '\\"hi\\"' in n3
        assert "\\n" in n3
        assert "\\t" in n3
        assert "\\\\end" in n3

    def test_numeric_detection(self):
        assert Literal("3.5").is_numeric
        assert Literal("42").is_numeric
        assert not Literal("abc").is_numeric
        assert not Literal("42", language="en").is_numeric

    def test_integer_constructor(self):
        assert Literal.integer(7).numeric_value() == 7

    def test_boolean(self):
        assert Literal.boolean(True).boolean_value() is True
        assert Literal.boolean(False).boolean_value() is False
        with pytest.raises(ValueError):
            Literal("maybe", datatype=XSD_BOOLEAN).boolean_value()

    def test_equality_distinguishes_datatype(self):
        assert Literal("5") != Literal("5", datatype=XSD_INTEGER)
        assert Literal("a", language="en") != Literal("a", language="de")


class TestVariableAndBNode:
    def test_variable_strips_question_mark(self):
        assert Variable("?x") == Variable("x")
        assert Variable("$x") == Variable("x")
        assert Variable("x").n3() == "?x"

    def test_bnode(self):
        assert BNode("b1").n3() == "_:b1"
        assert BNode("b1") == BNode("b1")

    def test_cross_kind_inequality(self):
        assert IRI("http://a") != Literal("http://a")
        assert Variable("a") != BNode("a")


class TestOrdering:
    def test_total_order_is_deterministic(self):
        terms = [
            Literal("z"),
            IRI("http://a"),
            BNode("x"),
            Variable("v"),
            Literal("a", datatype=XSD_INTEGER),
        ]
        ordered = sorted(terms)
        assert ordered == sorted(reversed(terms))
        # BNodes sort before IRIs before literals before variables.
        kinds = [type(t).__name__ for t in ordered]
        assert kinds == ["BNode", "IRI", "Literal", "Literal", "Variable"]
