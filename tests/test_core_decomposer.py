"""Unit tests for Algorithm 2 (query decomposition)."""


from repro.core.decomposer import Decomposer, QueryGraph, _connected_components, compute_projections
from repro.core.gjv import GJVReport
from repro.core.subquery import Subquery
from repro.rdf import IRI, TriplePattern, Variable

P = lambda n: IRI(f"http://x/{n}")
V = lambda n: Variable(n)

# a chain: ?a p ?b . ?b q ?c . ?c r ?d
CHAIN = [
    TriplePattern(V("a"), P("p"), V("b")),
    TriplePattern(V("b"), P("q"), V("c")),
    TriplePattern(V("c"), P("r"), V("d")),
]


def uniform_selection(patterns, sources=("ep1", "ep2")):
    return {p: tuple(sources) for p in patterns}


class TestQueryGraph:
    def test_edges_connect_subject_and_object(self):
        graph = QueryGraph(CHAIN)
        assert len(graph.edges(V("b"))) == 2
        assert len(graph.edges(V("a"))) == 1
        assert len(graph.edges(V("d"))) == 1

    def test_self_loop_pattern(self):
        loop = TriplePattern(V("x"), P("p"), V("x"))
        graph = QueryGraph([loop])
        assert len(graph.edges(V("x"))) == 1


class TestDecomposeWithoutGJVs:
    def test_connected_query_single_subquery(self):
        decomposer = Decomposer(uniform_selection(CHAIN), GJVReport())
        subqueries = decomposer.decompose(CHAIN)
        assert len(subqueries) == 1
        assert len(subqueries[0].patterns) == 3

    def test_disconnected_components_split(self):
        patterns = [
            TriplePattern(V("a"), P("p"), V("b")),
            TriplePattern(V("x"), P("q"), V("y")),
        ]
        selection = {
            patterns[0]: ("ep1",),
            patterns[1]: ("ep2",),
        }
        decomposer = Decomposer(selection, GJVReport())
        subqueries = decomposer.decompose(patterns)
        assert len(subqueries) == 2
        assert {sq.sources for sq in subqueries} == {("ep1",), ("ep2",)}

    def test_empty_patterns(self):
        decomposer = Decomposer({}, GJVReport())
        assert decomposer.decompose([]) == []


class TestDecomposeWithGJVs:
    def make_report(self, variable, pair):
        report = GJVReport()
        report.add(variable, *pair)
        return report

    def test_forbidden_pair_split(self):
        report = self.make_report(V("b"), (CHAIN[0], CHAIN[1]))
        decomposer = Decomposer(uniform_selection(CHAIN), report)
        subqueries = decomposer.decompose(CHAIN)
        for subquery in subqueries:
            assert not (CHAIN[0] in subquery.patterns and CHAIN[1] in subquery.patterns)
        all_patterns = [p for sq in subqueries for p in sq.patterns]
        assert sorted(all_patterns, key=str) == sorted(CHAIN, key=str)

    def test_unforbidden_pair_can_merge(self):
        report = self.make_report(V("b"), (CHAIN[0], CHAIN[1]))
        decomposer = Decomposer(uniform_selection(CHAIN), report)
        subqueries = decomposer.decompose(CHAIN)
        # q and r share ?c with no forbidden pair -> same subquery
        owner = [sq for sq in subqueries if CHAIN[1] in sq.patterns]
        assert CHAIN[2] in owner[0].patterns

    def test_different_sources_never_share(self):
        report = self.make_report(V("b"), (CHAIN[0], CHAIN[1]))
        selection = {
            CHAIN[0]: ("ep1",),
            CHAIN[1]: ("ep2",),
            CHAIN[2]: ("ep1", "ep2"),
        }
        decomposer = Decomposer(selection, report)
        subqueries = decomposer.decompose(CHAIN)
        for subquery in subqueries:
            source_sets = {selection[p] for p in subquery.patterns}
            assert len(source_sets) == 1

    def test_cost_estimator_picks_cheapest(self):
        report = GJVReport()
        report.add(V("b"), CHAIN[0], CHAIN[1])
        report.add(V("c"), CHAIN[1], CHAIN[2])
        calls = []

        def estimator(subqueries):
            calls.append(len(subqueries))
            return float(len(subqueries))

        decomposer = Decomposer(uniform_selection(CHAIN), report, estimator)
        subqueries = decomposer.decompose(CHAIN)
        assert len(calls) == 2  # one decomposition per GJV root
        assert len(subqueries) == min(calls)


class TestConnectedComponents:
    def test_single_component(self):
        assert len(_connected_components(CHAIN)) == 1

    def test_two_components(self):
        patterns = CHAIN[:1] + [TriplePattern(V("x"), P("s"), V("y"))]
        assert len(_connected_components(patterns)) == 2

    def test_ground_patterns_are_isolated(self):
        ground = TriplePattern(P("a"), P("p"), P("b"))
        components = _connected_components([ground, CHAIN[0]])
        assert len(components) == 2


class TestComputeProjections:
    def test_join_variables_kept(self):
        sq1 = Subquery(patterns=[CHAIN[0]], sources=("ep1",), label="a")
        sq2 = Subquery(patterns=[CHAIN[1]], sources=("ep1",), label="b")
        compute_projections([sq1, sq2], frozenset())
        assert V("b") in sq1.projection
        assert V("b") in sq2.projection

    def test_required_variables_kept(self):
        sq = Subquery(patterns=[CHAIN[0]], sources=("ep1",), label="a")
        compute_projections([sq], frozenset({V("a")}))
        assert V("a") in sq.projection

    def test_private_variables_dropped(self):
        sq1 = Subquery(patterns=[CHAIN[0]], sources=("ep1",), label="a")
        sq2 = Subquery(patterns=[CHAIN[1]], sources=("ep1",), label="b")
        compute_projections([sq1, sq2], frozenset({V("a")}))
        # ?c is private to sq2 and not required
        assert V("c") not in sq1.projection

    def test_internal_join_vars_kept_for_multi_source(self):
        sq = Subquery(
            patterns=[CHAIN[0], CHAIN[1]], sources=("ep1", "ep2"), label="a"
        )
        compute_projections([sq], frozenset())
        assert V("b") in sq.projection

    def test_projection_never_empty(self):
        sq = Subquery(patterns=[CHAIN[0]], sources=("ep1",), label="a")
        compute_projections([sq], frozenset())
        assert sq.projection
