"""Result cache: canonical keys, LRU/byte eviction, version invalidation.

Covers the PR-7 cache hierarchy additions: the federation-wide subquery
result cache, variable-renaming-invariant canonical keys (Hypothesis
properties), the stale-read regression for every version-keyed cache
after a TripleStore mutation, cache-warmth-aware delay classification,
and the replica/fragment registration validation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LusailEngine
from repro.federation import ResultCache, canonical_subquery_key
from repro.rdf import IRI, Literal, Triple, TriplePattern, Variable
from repro.rdf import parse as nt_parse
from repro.sparql.expressions import CompareExpr, TermExpr
from repro.sparql.results import ResultSet

from .conftest import (
    QA_EXPECTED,
    QUERY_QA,
    RDF_TYPE,
    UB,
    build_paper_federation,
    result_values,
)

XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"


def _result(*rows, width=1):
    header = tuple(Variable(f"c{i}") for i in range(width))
    return ResultSet(header, [
        row if isinstance(row, tuple) else (IRI(f"http://x/{row}"),)
        for row in rows
    ])


class TestResultCacheUnit:
    def test_hit_miss_counters(self):
        cache = ResultCache()
        assert cache.get("ep", 0, "k") is None
        cache.put("ep", 0, "k", _result("a"))
        hit = cache.get("ep", 0, "k")
        assert hit is not None and len(hit.rows) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_version_is_part_of_the_key(self):
        cache = ResultCache()
        cache.put("ep", 0, "k", _result("a"))
        assert cache.get("ep", 1, "k") is None
        assert cache.get("ep", 0, "k") is not None

    def test_get_returns_fresh_result_set(self):
        cache = ResultCache()
        cache.put("ep", 0, "k", _result("a"))
        first = cache.get("ep", 0, "k")
        first.rows.append((IRI("http://x/intruder"),))
        second = cache.get("ep", 0, "k")
        assert len(second.rows) == 1

    def test_projection_rewrites_header(self):
        cache = ResultCache()
        cache.put("ep", 0, "k", _result("a"))
        renamed = cache.get("ep", 0, "k", projection=[Variable("other")])
        assert renamed.variables == (Variable("other"),)

    def test_lru_entry_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("ep", 0, "k1", _result("a"))
        cache.put("ep", 0, "k2", _result("b"))
        assert cache.get("ep", 0, "k1") is not None  # refresh k1
        cache.put("ep", 0, "k3", _result("c"))      # evicts k2 (LRU)
        assert cache.get("ep", 0, "k2") is None
        assert cache.get("ep", 0, "k1") is not None
        assert cache.get("ep", 0, "k3") is not None
        assert cache.evictions == 1

    def test_byte_budget_eviction(self):
        small = _result("a")
        entry_bytes = ResultCache.ENTRY_OVERHEAD_BYTES + small.estimated_bytes()
        cache = ResultCache(max_bytes=2 * entry_bytes)
        cache.put("ep", 0, "k1", _result("a"))
        cache.put("ep", 0, "k2", _result("b"))
        cache.put("ep", 0, "k3", _result("c"))
        assert len(cache) == 2
        assert cache.current_bytes <= cache.max_bytes
        assert cache.get("ep", 0, "k1") is None

    def test_oversized_entry_is_not_cached(self):
        cache = ResultCache(max_bytes=8)
        cache.put("ep", 0, "k", _result("a", "b", "c"))
        assert len(cache) == 0

    def test_replace_same_key_adjusts_bytes(self):
        cache = ResultCache()
        cache.put("ep", 0, "k", _result("a", "b", "c"))
        cache.put("ep", 0, "k", _result("a"))
        assert len(cache) == 1
        expected = ResultCache.ENTRY_OVERHEAD_BYTES + _result("a").estimated_bytes()
        assert cache.current_bytes == expected

    def test_clear_keeps_counters(self):
        cache = ResultCache()
        cache.put("ep", 0, "k", _result("a"))
        cache.get("ep", 0, "k")
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.hits == 1
        assert cache.get("ep", 0, "k") is None


# ----------------------------------------------------------------------
# Canonical-key properties
# ----------------------------------------------------------------------

_NAMES = ("a", "b", "c", "d")
_IRIS = tuple(IRI(f"http://t/{n}") for n in ("p", "q", "r"))

_variables = st.sampled_from(_NAMES).map(Variable)
_grounds = st.one_of(
    st.sampled_from(_IRIS),
    st.from_regex(r"[a-z0-9]{1,4}", fullmatch=True).map(Literal),
)
_terms = st.one_of(_variables, _grounds)
_patterns = st.builds(TriplePattern, _terms, _terms, _terms)
_pattern_lists = st.lists(_patterns, min_size=1, max_size=4)


def _rename_pattern(pattern, mapping):
    return TriplePattern(*[
        mapping.get(t, t) if isinstance(t, Variable) else t
        for t in pattern.as_tuple()
    ])


def _normal_form(patterns):
    """Independent reference normalization: variables -> first-use index."""
    order = {}
    shape = []
    for pattern in patterns:
        row = []
        for term in pattern.as_tuple():
            if isinstance(term, Variable):
                row.append(("var", order.setdefault(term, len(order))))
            else:
                row.append(("ground", term.n3()))
        shape.append(tuple(row))
    return tuple(shape)


class TestCanonicalKeyProperties:
    @given(_pattern_lists, st.permutations(list(_NAMES)))
    @settings(max_examples=120, deadline=None)
    def test_invariant_under_variable_renaming(self, patterns, permuted):
        mapping = {
            Variable(old): Variable(f"renamed_{new}")
            for old, new in zip(_NAMES, permuted)
        }
        renamed = [_rename_pattern(p, mapping) for p in patterns]
        variables = sorted(
            {v for p in patterns for v in p.variables()},
            key=lambda v: v.name,
        )
        assert canonical_subquery_key(
            patterns, projection=variables
        ) == canonical_subquery_key(
            renamed, projection=[mapping[v] for v in variables]
        )

    @given(_pattern_lists, _pattern_lists)
    @settings(max_examples=150, deadline=None)
    def test_collision_freedom(self, left, right):
        same_key = (
            canonical_subquery_key(left) == canonical_subquery_key(right)
        )
        assert same_key == (_normal_form(left) == _normal_form(right))

    def test_repeated_variable_is_distinguished(self):
        p = _IRIS[0]
        self_loop = [TriplePattern(Variable("x"), p, Variable("x"))]
        two_vars = [TriplePattern(Variable("x"), p, Variable("y"))]
        assert canonical_subquery_key(self_loop) != canonical_subquery_key(two_vars)

    def test_literal_datatype_and_language_are_distinguished(self):
        p = _IRIS[0]
        keys = {
            canonical_subquery_key([TriplePattern(Variable("x"), p, literal)])
            for literal in (
                Literal("5"),
                Literal("5", datatype=XSD_INT),
                Literal("5", language="en"),
            )
        }
        assert len(keys) == 3

    def test_filter_role_swap_is_distinguished(self):
        """?x p ?y FILTER(?x<5) vs FILTER(?y<5): same bare patterns."""
        patterns = [TriplePattern(Variable("x"), _IRIS[0], Variable("y"))]
        def keyed(name):
            fltr = CompareExpr(
                "<", TermExpr(Variable(name)), TermExpr(Literal("5", datatype=XSD_INT))
            )
            return canonical_subquery_key(patterns, filters=[fltr])
        assert keyed("x") != keyed("y")

    def test_projection_is_part_of_the_key(self):
        patterns = [TriplePattern(Variable("x"), _IRIS[0], Variable("y"))]
        assert canonical_subquery_key(
            patterns, projection=[Variable("x")]
        ) != canonical_subquery_key(patterns, projection=[Variable("y")])

    def test_values_constraint_is_part_of_the_key(self):
        patterns = [TriplePattern(Variable("x"), _IRIS[0], Variable("y"))]
        unconstrained = canonical_subquery_key(patterns)
        constrained = canonical_subquery_key(
            patterns, values_variable=Variable("x"), values_terms=[_IRIS[1]]
        )
        assert unconstrained != constrained


# ----------------------------------------------------------------------
# Stale reads after store mutation (regression for every cache layer)
# ----------------------------------------------------------------------

class TestMutationInvalidation:
    def test_removed_triple_disappears_from_answers(self):
        federation = build_paper_federation()
        engine = LusailEngine(federation)
        first = engine.execute(QUERY_QA)
        assert result_values(first.result) == QA_EXPECTED

        # Tim's cross-endpoint PhD made (Kim, Tim, MIT, "XXX") an answer.
        federation.endpoint("ep2").store.remove(Triple(
            IRI("http://cmu.edu/Tim"),
            IRI(f"{UB}PhDDegreeFrom"),
            IRI("http://mit.edu/MIT"),
        ))
        second = engine.execute(QUERY_QA)
        expected = {
            row for row in QA_EXPECTED if row[1] != "http://cmu.edu/Tim"
        }
        assert result_values(second.result) == expected

    def test_added_triples_appear_in_answers(self):
        federation = build_paper_federation()
        engine = LusailEngine(federation)
        first = engine.execute(QUERY_QA)
        assert result_values(first.result) == QA_EXPECTED

        # A brand-new advisee/advisor pair on ep1: the ASK cache must
        # not pin the old source set, the COUNT cache must not pin the
        # old cardinalities, and the result cache must not replay the
        # old relations.
        new_rows = f"""
        <http://mit.edu/Zoe> <{RDF_TYPE}> <{UB}GraduateStudent> .
        <http://mit.edu/Zoe> <{UB}advisor> <http://mit.edu/Ann> .
        <http://mit.edu/Ann> <{UB}teacherOf> <http://mit.edu/c1> .
        <http://mit.edu/Zoe> <{UB}takesCourse> <http://mit.edu/c1> .
        <http://mit.edu/Ann> <{UB}PhDDegreeFrom> <http://mit.edu/MIT> .
        """
        store = federation.endpoint("ep1").store
        for triple in nt_parse(new_rows):
            store.add(triple)
        second = engine.execute(QUERY_QA)
        # Zoe is the new answer; Sam (already advised by Ann, already
        # taking c1) becomes one too now that Ann teaches c1 with a PhD.
        assert result_values(second.result) == QA_EXPECTED | {
            (
                "http://mit.edu/Zoe", "http://mit.edu/Ann",
                "http://mit.edu/MIT", "XXX",
            ),
            (
                "http://mit.edu/Sam", "http://mit.edu/Ann",
                "http://mit.edu/MIT", "XXX",
            ),
        }


# ----------------------------------------------------------------------
# Cache warmth: the second pass is (nearly) request-free
# ----------------------------------------------------------------------

class TestWarmSecondPass:
    def test_repeat_execution_avoids_requests(self):
        engine = LusailEngine(build_paper_federation())
        first = engine.execute(QUERY_QA)
        second = engine.execute(QUERY_QA)
        assert result_values(second.result) == result_values(first.result)
        assert second.metrics.requests <= first.metrics.requests // 10
        assert second.metrics.result_cache_hits > 0
        assert second.metrics.requests_avoided > 0

    def test_renamed_query_still_hits(self):
        engine = LusailEngine(build_paper_federation())
        engine.execute(QUERY_QA)
        renamed = (
            QUERY_QA.replace("?S", "?student").replace("?P", "?prof")
            .replace("?U", "?university").replace("?A", "?addr")
            .replace("?C", "?course")
        )
        second = engine.execute(renamed)
        assert result_values(second.result) == QA_EXPECTED
        assert second.metrics.requests == 0

    def test_ablation_knob_disables_the_cache(self):
        engine = LusailEngine(build_paper_federation(), result_cache=False)
        assert engine.result_cache is None
        first = engine.execute(QUERY_QA)
        second = engine.execute(QUERY_QA)
        assert result_values(second.result) == QA_EXPECTED
        assert second.metrics.result_cache_hits == 0
        # analysis caches still help, but real SELECT traffic remains
        assert second.metrics.select_requests > 0
        assert result_values(first.result) == result_values(second.result)

    def test_warm_subqueries_are_not_delayed(self):
        engine = LusailEngine(build_paper_federation())
        cold = engine.execute(QUERY_QA, trace=True)
        warm = engine.execute(QUERY_QA, trace=True)
        cold_info = cold.trace.of_kind("decomposition")[0].detail["subqueries"]
        warm_info = warm.trace.of_kind("decomposition")[0].detail["subqueries"]
        assert not any(info["cache_warm"] for info in cold_info)
        assert all(info["cache_warm"] for info in warm_info)
        assert not any(info["delayed"] for info in warm_info)

    def test_mutation_resets_warmth(self):
        federation = build_paper_federation()
        engine = LusailEngine(federation)
        engine.execute(QUERY_QA)
        federation.endpoint("ep1").store.add(Triple(
            IRI("http://mit.edu/extra"), IRI(f"{UB}name"), Literal("x"),
        ))
        after = engine.execute(QUERY_QA, trace=True)
        info = after.trace.of_kind("decomposition")[0].detail["subqueries"]
        assert not all(i["cache_warm"] for i in info)
        assert after.metrics.requests > 0


# ----------------------------------------------------------------------
# Replica / fragment registration validation
# ----------------------------------------------------------------------

class TestReplicaValidation:
    def test_unknown_primary_raises_helpful_keyerror(self):
        federation = build_paper_federation()
        with pytest.raises(KeyError, match="unknown primary endpoint 'nope'"):
            federation.register_replica("nope", "ep2")

    def test_unknown_replica_raises_helpful_keyerror(self):
        federation = build_paper_federation()
        with pytest.raises(KeyError) as err:
            federation.register_replica("ep1", "ghost")
        message = str(err.value)
        assert "unknown replica endpoint 'ghost'" in message
        assert "ep1" in message and "ep2" in message  # lists known ids

    def test_declare_fragment_validation(self):
        federation = build_paper_federation()
        with pytest.raises(ValueError):
            federation.declare_fragment("f", ("ep1",))
        with pytest.raises(ValueError):
            federation.declare_fragment("f", ("ep1", "ep1"))
        with pytest.raises(KeyError):
            federation.declare_fragment("f", ("ep1", "ghost"))
        federation.declare_fragment("f", ("ep1", "ep2"))
        with pytest.raises(ValueError):
            federation.declare_fragment("f", ("ep1", "ep2"))
        assert [fragment.name for fragment in federation.fragments] == ["f"]
