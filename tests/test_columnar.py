"""Columnar-backend tests: the sorted-run column store is observably
identical to the nested-dict modes (match streams, counts, statistics,
and full evaluator runs — rows *and* order), under sharding, with and
without numpy, and across remove()/compaction cycles.  Also covers the
vectorized global-join kernel's equivalence with the per-row kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.joins import hash_join, left_outer_join
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint, Region
from repro.endpoint.metrics import ExecutionContext
from repro.rdf import IRI, Literal, Triple, TriplePattern, Variable
from repro.sparql import Evaluator, parse_query
from repro.sparql.ast import GroupPattern, Query
from repro.sparql.results import ResultSet
from repro.store import TripleStore
from repro.store import columnar as columnar_module
from repro.store.columnar import ColumnarStore
from repro.store.stats import VoidDescription

_TERMS = [IRI(f"http://x/t{i}") for i in range(5)] + [Literal("lit")]
_VARIABLES = [Variable(name) for name in ("a", "b", "c")]

_triples = st.builds(
    Triple,
    st.sampled_from(_TERMS),
    st.sampled_from(_TERMS),
    st.sampled_from(_TERMS),
)
_pattern_terms = st.one_of(st.sampled_from(_TERMS), st.sampled_from(_VARIABLES))
_patterns = st.builds(TriplePattern, _pattern_terms, _pattern_terms, _pattern_terms)


def _iri(name):
    return IRI("http://ex/" + name)


#: every store mode under test: (use_dictionary, use_columnar, shards)
_MODES = [
    (False, False, 1),   # seed: term-keyed nested dicts
    (True, False, 1),    # dictionary-keyed nested dicts
    (True, True, 1),     # columnar, single shard
    (True, True, 3),     # columnar, subject-sharded
]


def _stores(triples):
    return [
        TripleStore(
            triples, use_dictionary=d, use_columnar=c, shards=s
        )
        for d, c, s in _MODES
    ]


@pytest.fixture
def no_numpy(monkeypatch):
    """Simulate a numpy-free interpreter: the columnar store must fall
    back to pure-``array`` storage and per-row execution."""
    monkeypatch.setattr(columnar_module, "_np", None)
    monkeypatch.setattr(ColumnarStore, "vectorized", False)


class TestConstruction:
    def test_columnar_requires_dictionary(self):
        with pytest.raises(ValueError):
            TripleStore([], use_dictionary=False, use_columnar=True)

    def test_bad_shard_count(self):
        with pytest.raises(ValueError):
            ColumnarStore(shards=0)

    def test_sharding_partitions_by_subject(self):
        triples = [
            Triple(_iri(f"s{i}"), _iri("p"), _iri(f"o{i}")) for i in range(64)
        ]
        store = TripleStore(triples, use_columnar=True, shards=4)
        col = store.columnar
        assert len(col._shards) == 4
        assert sum(len(shard.s) - shard.dead for shard in col._shards) == 64
        # every occurrence of one subject lands in one shard
        sid = store.dictionary.lookup(_iri("s0"))
        assert col.contains(
            sid,
            store.dictionary.lookup(_iri("p")),
            store.dictionary.lookup(_iri("o0")),
        )


class TestStoreModesEquivalent:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(_triples, max_size=15), _patterns)
    def test_match_terms_identical_stream(self, triples, pattern):
        reference, *others = _stores(triples)
        expected = list(reference.match_terms(pattern))
        expected_count = reference.count(pattern)
        for store in others:
            assert list(store.match_terms(pattern)) == expected
            assert store.count(pattern) == expected_count

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_triples, max_size=15))
    def test_statistics_identical(self, triples):
        reference, *others = _stores(triples)
        for store in others:
            assert len(store) == len(reference)
            assert store.predicates() == reference.predicates()
            assert store.subjects() == reference.subjects()
            assert store.objects() == reference.objects()
            for p in reference.predicates():
                assert store.predicate_count(p) == reference.predicate_count(p)
                assert (
                    store.distinct_subject_count(p)
                    == reference.distinct_subject_count(p)
                )
                assert (
                    store.distinct_object_count(p)
                    == reference.distinct_object_count(p)
                )
                assert store.subjects(p) == reference.subjects(p)
                assert store.objects(p) == reference.objects(p)
            assert set(store.triples()) == set(reference.triples())

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_triples, max_size=15))
    def test_void_description_identical(self, triples):
        reference, *others = _stores(triples)
        expected = VoidDescription.from_store(reference)
        for store in others:
            description = VoidDescription.from_store(store)
            assert description.total_triples == expected.total_triples
            assert description.predicate_stats == expected.predicate_stats
            assert description.classes == expected.classes


class TestEvaluatorDifferential:
    """All four store modes produce identical ResultSets — the same
    rows in the same deterministic order."""

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(_triples, max_size=15),
        st.lists(_patterns, min_size=1, max_size=3),
    )
    def test_bgp_select_identical_rows_and_order(self, triples, patterns):
        query = Query(form="SELECT", where=GroupPattern(elements=list(patterns)))
        results = []
        for (d, c, s), store in zip(_MODES, _stores(triples)):
            results.append(Evaluator(store, use_dictionary=d).select(query))
        reference, *others = results
        for result in others:
            assert result.variables == reference.variables
            assert result.rows == reference.rows  # order included

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(_triples, max_size=12),
        st.lists(_patterns, min_size=1, max_size=2),
    )
    def test_numpy_free_columnar_is_equivalent(self, triples, patterns):
        query = Query(form="SELECT", where=GroupPattern(elements=list(patterns)))
        reference_store = TripleStore(triples, use_dictionary=True)
        reference = Evaluator(reference_store).select(query)
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(columnar_module, "_np", None)
            mp.setattr(ColumnarStore, "vectorized", False)
            for shards in (1, 3):
                store = TripleStore(triples, use_columnar=True, shards=shards)
                result = Evaluator(store).select(query)
                assert result.variables == reference.variables
                assert result.rows == reference.rows

    def test_fast_path_counts_columnar_blocks(self):
        triples = [
            Triple(_iri(f"s{i}"), _iri("p"), _iri(f"o{i % 7}"))
            for i in range(40)
        ]
        store = TripleStore(triples, use_columnar=True)
        evaluator = Evaluator(store)
        query = parse_query("SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }")
        result = evaluator.select(query)
        assert len(result) == 40
        if store.columnar.vectorized:
            assert evaluator.stats.columnar_blocks > 0

    def test_general_path_with_filter(self):
        triples = [
            Triple(_iri(f"s{i}"), _iri("p"), Literal(str(i)))
            for i in range(6)
        ]
        query = parse_query(
            'SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . FILTER(?o != "3") }'
        )
        reference = Evaluator(TripleStore(triples)).select(query)
        for shards in (1, 2):
            store = TripleStore(triples, use_columnar=True, shards=shards)
            result = Evaluator(store).select(query)
            assert result.rows == reference.rows
            assert len(result.rows) == 5


class TestRemoveAndCompaction:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(_triples, min_size=1, max_size=15),
        st.data(),
    )
    def test_remove_then_query_matches_dict_store(self, triples, data):
        """Interleaved removes leave the columnar store identical to a
        dict store that saw the same mutation sequence."""
        reference = TripleStore(triples, use_dictionary=True)
        stores = [
            TripleStore(triples, use_columnar=True, shards=s) for s in (1, 3)
        ]
        victims = data.draw(
            st.lists(st.sampled_from(triples), max_size=5)
        )
        for victim in victims:
            expected = reference.remove(victim)
            for store in stores:
                assert store.remove(victim) == expected
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        expected_rows = list(reference.match_terms(pattern))
        for store in stores:
            assert len(store) == len(reference)
            assert list(store.match_terms(pattern)) == expected_rows

    def test_add_remove_add_roundtrip(self):
        t = Triple(_iri("s"), _iri("p"), _iri("o"))
        store = TripleStore([], use_columnar=True)
        assert store.add(t)
        assert not store.add(t)
        assert store.remove(t)
        assert not store.remove(t)
        assert store.add(t)
        assert list(store.triples()) == [t]

    def test_deferred_compaction_reclaims_tombstones(self):
        n = 600
        triples = [
            Triple(_iri(f"s{i}"), _iri("p"), _iri(f"o{i}")) for i in range(n)
        ]
        store = TripleStore(triples, use_columnar=True)
        col = store.columnar
        # drop two thirds: past the deferred-compaction dead threshold
        for i in range(n):
            if i % 3 != 0:
                assert store.remove(triples[i])
        survivors = {triples[i] for i in range(0, n, 3)}
        assert len(store) == len(survivors)
        # force the deferred flush/compaction and re-verify every read
        col.flush()
        assert sum(shard.dead for shard in col._shards) == 0
        assert set(store.triples()) == survivors
        assert store.count(
            TriplePattern(Variable("s"), _iri("p"), Variable("o"))
        ) == len(survivors)

    def test_version_bumps_invalidate_cached_plans(self):
        triples = [
            Triple(_iri(f"s{i}"), _iri("p"), _iri("o")) for i in range(8)
        ]
        store = TripleStore(triples, use_columnar=True)
        evaluator = Evaluator(store)
        query = parse_query("SELECT ?s WHERE { ?s <http://ex/p> <http://ex/o> . }")
        assert len(evaluator.select(query)) == 8
        version = store.version
        extra = Triple(_iri("s-new"), _iri("p"), _iri("o"))
        store.add(extra)
        assert store.version > version
        assert len(evaluator.select(query)) == 9
        store.remove(extra)
        assert len(evaluator.select(query)) == 8

    def test_interning_does_not_bump_version(self):
        store = TripleStore([], use_columnar=True)
        version = store.version
        store.dictionary.encode(_iri("interned-only"))
        assert store.version == version


class TestAddAll:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(_triples, max_size=20))
    def test_add_all_equals_per_add(self, triples):
        bulk = TripleStore(use_columnar=True, shards=2)
        inserted = bulk.add_all(triples)
        one_by_one = TripleStore(use_columnar=True, shards=2)
        expected = sum(one_by_one.add(t) for t in triples)
        assert inserted == expected
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        assert list(bulk.match_terms(pattern)) == list(
            one_by_one.match_terms(pattern)
        )

    def test_add_all_reports_inserted_count(self):
        t = Triple(_iri("s"), _iri("p"), _iri("o"))
        store = TripleStore(use_columnar=True)
        assert store.add_all([t, t]) == 1
        assert len(store) == 1


class TestVectorizedJoins:
    """The batched join kernel is bit-identical to the per-row kernel
    (rows *and* order) and falls back on wildcards."""

    def _result_sets(self, seed, n_left, n_right, domain, none_prob=0.0):
        import random

        rng = random.Random(seed)

        def rows(names, n):
            out = []
            for _ in range(n):
                out.append(tuple(
                    None
                    if none_prob and rng.random() < none_prob
                    else IRI(f"http://x/{rng.randrange(domain)}")
                    for _ in names
                ))
            return out

        left_names = ("a", "b")
        right_names = ("b", "c")
        return (
            ResultSet(tuple(Variable(v) for v in left_names),
                      rows(left_names, n_left)),
            ResultSet(tuple(Variable(v) for v in right_names),
                      rows(right_names, n_right)),
        )

    def _context(self, vectorized):
        return ExecutionContext(
            LOCAL_CLUSTER, Region("local"), vectorized_joins=vectorized
        )

    @pytest.mark.parametrize("op", [hash_join, left_outer_join])
    @pytest.mark.parametrize("seed,n_left,n_right,domain", [
        (1, 200, 300, 40),
        (2, 500, 100, 8),    # heavy fan-out, build side = right
        (3, 40, 700, 25),    # build side = left
    ])
    def test_vectorized_matches_per_row(self, op, seed, n_left, n_right, domain):
        left, right = self._result_sets(seed, n_left, n_right, domain)
        vec_context = self._context(True)
        vectorized = op(left, right, context=vec_context)
        per_row = op(left, right, context=self._context(False))
        assert vectorized.variables == per_row.variables
        assert vectorized.rows == per_row.rows
        assert vec_context.metrics.join_vectorized_batches == 1

    @pytest.mark.parametrize("op", [hash_join, left_outer_join])
    def test_wildcard_keys_fall_back(self, op):
        left, right = self._result_sets(5, 120, 120, 20, none_prob=0.15)
        vec_context = self._context(True)
        vectorized = op(left, right, context=vec_context)
        per_row = op(left, right, context=self._context(False))
        assert vectorized.rows == per_row.rows
        assert vec_context.metrics.join_vectorized_batches == 0

    def test_numpy_free_joins_match(self, no_numpy):
        left, right = self._result_sets(7, 150, 200, 30)
        context = self._context(True)
        result = hash_join(left, right, context=context)
        reference = hash_join(left, right, context=self._context(False))
        assert result.rows == reference.rows
        assert context.metrics.join_vectorized_batches == 0


class TestEndpointPlumbing:
    def test_local_endpoint_columnar_knobs(self):
        triples = [
            Triple(_iri(f"s{i}"), _iri("p"), _iri(f"o{i}")) for i in range(10)
        ]
        endpoint = LocalEndpoint.from_triples(
            "e0", triples, use_columnar=True, shards=2
        )
        assert endpoint.store.columnar is not None
        assert endpoint.store.columnar.shards == 2
        response = endpoint.execute(
            "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }"
        )
        assert len(response.value) == 10
