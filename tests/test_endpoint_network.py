"""Tests for endpoints, the network model, and execution metrics."""

import pytest

from repro.endpoint import (
    AZURE_GEO,
    EndpointRateLimitError,
    ExecutionContext,
    LOCAL_CLUSTER,
    LinkProfile,
    LocalEndpoint,
    MemoryLimitError,
    NetworkModel,
    QueryTimeoutError,
    Region,
)
from repro.rdf import parse as nt_parse

DATA = """
<http://u/kim> <http://ub/advisor> <http://u/tim> .
<http://u/tim> <http://ub/teacherOf> <http://u/c1> .
<http://u/kim> <http://ub/takesCourse> <http://u/c1> .
"""


@pytest.fixture
def endpoint():
    return LocalEndpoint.from_triples("ep1", nt_parse(DATA))


class TestLocalEndpoint:
    def test_select(self, endpoint):
        response = endpoint.execute("SELECT ?s WHERE { ?s <http://ub/advisor> ?o }")
        assert len(response.value) == 1
        assert response.rows_touched == 1
        assert response.bytes_received > 0

    def test_ask(self, endpoint):
        response = endpoint.execute("ASK { ?s <http://ub/advisor> ?o }")
        assert response.value is True
        response = endpoint.execute("ASK { ?s <http://ub/nothing> ?o }")
        assert response.value is False

    def test_triple_count(self, endpoint):
        assert endpoint.triple_count() == 3

    def test_parse_cache_reuses_ast(self, endpoint):
        text = "SELECT ?s WHERE { ?s <http://ub/advisor> ?o }"
        endpoint.execute(text)
        assert text in endpoint._parse_cache
        endpoint.execute(text)  # served from cache; same result
        assert len(endpoint.execute(text).value) == 1

    def test_rate_limit(self):
        endpoint = LocalEndpoint.from_triples(
            "ep", nt_parse(DATA), max_requests_per_query=2
        )
        endpoint.execute("ASK { ?s ?p ?o }")
        endpoint.execute("ASK { ?s ?p ?o }")
        with pytest.raises(EndpointRateLimitError):
            endpoint.execute("ASK { ?s ?p ?o }")
        endpoint.reset_request_window()
        endpoint.execute("ASK { ?s ?p ?o }")  # fresh window


class TestNetworkModel:
    def test_intra_vs_inter_region(self):
        a, b = Region("us"), Region("eu")
        assert AZURE_GEO.link(a, a).round_trip_seconds < AZURE_GEO.link(a, b).round_trip_seconds

    def test_override_symmetry(self):
        us, eu = Region("central-us"), Region("east-us")
        assert AZURE_GEO.link(us, eu) == AZURE_GEO.link(eu, us)

    def test_request_cost_scales_with_bytes(self):
        a, b = Region("x"), Region("y")
        small = LOCAL_CLUSTER.request_cost(a, b, 100, 100, 1)
        large = LOCAL_CLUSTER.request_cost(a, b, 100, 10_000_000, 1)
        assert large > small

    def test_request_cost_scales_with_rows(self):
        a, b = Region("x"), Region("y")
        few = LOCAL_CLUSTER.request_cost(a, b, 100, 100, 1)
        many = LOCAL_CLUSTER.request_cost(a, b, 100, 100, 1_000_000)
        assert many > few

    def test_transfer_seconds(self):
        profile = LinkProfile(0.01, 1000.0)
        assert profile.transfer_seconds(500, 500) == pytest.approx(1.01)


class TestExecutionContext:
    def make_context(self, **kwargs):
        return ExecutionContext(
            network=LOCAL_CLUSTER, client_region=Region("c"), **kwargs
        )

    def test_charge_accumulates(self):
        ctx = self.make_context()
        ctx.charge(1.5)
        ctx.charge(0.5)
        assert ctx.metrics.virtual_seconds == pytest.approx(2.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            self.make_context().charge(-1)

    def test_timeout(self):
        ctx = self.make_context(timeout_seconds=1.0)
        with pytest.raises(QueryTimeoutError):
            ctx.charge(2.0)

    def test_memory_limit(self):
        ctx = self.make_context(max_intermediate_rows=10)
        ctx.note_intermediate_rows(5)
        assert ctx.metrics.peak_intermediate_rows == 5
        with pytest.raises(MemoryLimitError):
            ctx.note_intermediate_rows(11)

    def test_phase_attribution(self):
        ctx = self.make_context()
        with ctx.phase("source_selection"):
            ctx.charge(1.0)
        with ctx.phase("execution"):
            ctx.charge(2.0)
        assert ctx.metrics.phase_seconds["source_selection"] == pytest.approx(1.0)
        assert ctx.metrics.phase_seconds["execution"] == pytest.approx(2.0)

    def test_nested_phases_attribute_to_innermost(self):
        ctx = self.make_context()
        with ctx.phase("outer"):
            ctx.charge(1.0)
            with ctx.phase("inner"):
                ctx.charge(2.0)
            ctx.charge(0.5)
        assert ctx.metrics.phase_seconds["inner"] == pytest.approx(2.0)
        assert ctx.metrics.phase_seconds["outer"] == pytest.approx(1.5)

    def test_charge_join_uses_threads(self):
        ctx = self.make_context(join_threads=4)
        ctx.charge_join(4_000_000)
        single = ExecutionContext(LOCAL_CLUSTER, Region("c"), join_threads=1)
        single.charge_join(4_000_000)
        assert ctx.metrics.virtual_seconds < single.metrics.virtual_seconds


class TestFailureInjection:
    def test_failure_rate_validation(self):
        from repro.rdf import parse as nt_parse
        with pytest.raises(ValueError):
            LocalEndpoint.from_triples("ep", nt_parse(DATA), failure_rate=1.5)

    def test_deterministic_failures(self):
        from repro.endpoint import EndpointUnavailableError
        from repro.rdf import parse as nt_parse

        def failure_positions(seed):
            endpoint = LocalEndpoint.from_triples(
                "ep", nt_parse(DATA), failure_rate=0.5, failure_seed=seed
            )
            outcomes = []
            for _ in range(20):
                try:
                    endpoint.execute("ASK { ?s ?p ?o }")
                    outcomes.append(True)
                except EndpointUnavailableError:
                    outcomes.append(False)
            return outcomes

        assert failure_positions(1) == failure_positions(1)
        assert False in failure_positions(1)
        assert True in failure_positions(1)

    def test_zero_rate_never_fails(self):
        from repro.rdf import parse as nt_parse

        endpoint = LocalEndpoint.from_triples("ep", nt_parse(DATA))
        for _ in range(50):
            endpoint.execute("ASK { ?s ?p ?o }")
