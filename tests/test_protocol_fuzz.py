"""Fuzzing the strict SPARQL-JSON wire decoder.

The decoder is the last line of defense between a hostile/corrupted wire
and the join pipeline.  Two properties must hold:

- **truncation is always detected**: every proper prefix of a valid
  results document fails to decode (JSON objects have no valid proper
  prefix), so a half-close can never yield a silently-short result set;
- **splices fail typed or round-trip exactly**: arbitrary byte edits
  either raise :class:`ProtocolDecodeError` or produce a document whose
  re-encode decodes to the same value — never a crash, never an
  undetected self-inconsistent answer.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.rdf import IRI, Literal
from repro.serving.protocol import (
    ProtocolDecodeError,
    decode_response_body,
    decode_results_payload,
    results_document,
)
from repro.sparql.results import ResultSet
from repro.rdf.term import Variable

XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"


def sample_document(rows=3):
    variables = [Variable("s"), Variable("o")]
    data = [
        (
            IRI(f"http://example.org/resource/{i}"),
            Literal(f"value {i}", language="en") if i % 2
            else Literal(str(i), datatype=XSD_INT),
        )
        for i in range(rows)
    ]
    return results_document(ResultSet(variables, data))


def encode(document) -> bytes:
    return json.dumps(document).encode("utf-8")


class TestTruncation:
    def test_every_proper_prefix_is_rejected(self):
        body = encode(sample_document())
        for cut in range(len(body)):
            with pytest.raises(ProtocolDecodeError):
                decode_response_body(body[:cut])

    def test_whole_document_round_trips(self):
        document = sample_document()
        value, info = decode_response_body(encode(document))
        assert isinstance(value, ResultSet)
        assert len(value.rows) == 3
        assert info is None

    def test_boolean_document_prefixes_rejected(self):
        body = encode({"head": {}, "boolean": True})
        for cut in range(len(body)):
            with pytest.raises(ProtocolDecodeError):
                decode_response_body(body[:cut])
        value, _info = decode_response_body(body)
        assert value is True


class TestStrictness:
    def test_unknown_top_level_member_rejected(self):
        document = sample_document()
        document["extensions"] = {}
        with pytest.raises(ProtocolDecodeError):
            decode_results_payload(document)

    def test_binding_outside_declared_vars_rejected(self):
        document = sample_document()
        document["results"]["bindings"][0]["ghost"] = {
            "type": "uri", "value": "http://example.org/x"
        }
        with pytest.raises(ProtocolDecodeError):
            decode_results_payload(document)

    def test_boolean_and_results_together_rejected(self):
        document = sample_document()
        document["boolean"] = True
        with pytest.raises(ProtocolDecodeError):
            decode_results_payload(document)

    def test_lang_and_datatype_together_rejected(self):
        document = sample_document()
        cell = document["results"]["bindings"][0]["o"]
        cell["xml:lang"] = "en"
        cell["datatype"] = XSD_INT
        with pytest.raises(ProtocolDecodeError):
            decode_results_payload(document)

    def test_non_utf8_rejected(self):
        with pytest.raises(ProtocolDecodeError):
            decode_response_body(b'{"head": {"vars": ["\xff\xfe"]}}')


@settings(max_examples=200, deadline=None)
@given(
    cut=st.integers(min_value=0, max_value=10_000),
    splice=st.binary(min_size=1, max_size=8),
)
def test_spliced_bytes_fail_typed_or_round_trip(cut, splice):
    """Replace a byte range with arbitrary bytes: the decoder must raise
    ProtocolDecodeError or decode to a value whose re-encode agrees."""
    body = encode(sample_document())
    position = cut % len(body)
    mutated = body[:position] + splice + body[position + len(splice):]
    try:
        value, info = decode_response_body(mutated)
    except ProtocolDecodeError:
        return  # typed rejection: the good outcome
    # Decoded despite the splice: the result must be self-consistent —
    # re-encoding and re-decoding reproduces it exactly.
    if isinstance(value, ResultSet):
        again, again_info = decode_response_body(
            encode(results_document(value))
        )
        assert isinstance(again, ResultSet)
        assert again.variables == value.variables
        assert again.rows == value.rows
    else:
        assert isinstance(value, bool)
    assert info is None or isinstance(info, dict)


@settings(max_examples=120, deadline=None)
@given(junk=st.binary(max_size=64))
def test_arbitrary_bytes_never_crash_the_decoder(junk):
    """Anything that isn't a valid document raises ProtocolDecodeError —
    no other exception type ever escapes."""
    try:
        value, _info = decode_response_body(junk)
    except ProtocolDecodeError:
        return
    assert isinstance(value, (bool, ResultSet))


@settings(max_examples=100, deadline=None)
@given(
    rows=st.integers(min_value=0, max_value=5),
    cut_fraction=st.floats(min_value=0.0, max_value=0.999),
)
def test_truncation_property_holds_for_any_size(rows, cut_fraction):
    body = encode(sample_document(rows=rows))
    cut = int(len(body) * cut_fraction)
    with pytest.raises(ProtocolDecodeError):
        decode_response_body(body[:cut])
