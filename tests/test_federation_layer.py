"""Tests for the federation registry, ERH, source selection, and caches."""

import pytest

from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import (
    AskCache,
    CheckCache,
    ElasticRequestHandler,
    Federation,
    Request,
    SourceSelector,
    ask_query_text,
    canonical_pattern_key,
)
from repro.rdf import IRI, TriplePattern, Variable, parse as nt_parse

EP1_DATA = """
<http://u0/kim> <http://ub/advisor> <http://u0/tim> .
<http://u0/tim> <http://ub/teacherOf> <http://u0/c1> .
"""
EP2_DATA = """
<http://u1/lee> <http://ub/advisor> <http://u1/ben> .
<http://u1/mit> <http://ub/address> "XXX" .
"""


@pytest.fixture
def federation():
    return Federation(
        [
            LocalEndpoint.from_triples("ep1", nt_parse(EP1_DATA)),
            LocalEndpoint.from_triples("ep2", nt_parse(EP2_DATA)),
        ],
        network=LOCAL_CLUSTER,
    )


@pytest.fixture
def handler(federation):
    return ElasticRequestHandler(federation, federation.make_context())


class TestFederation:
    def test_duplicate_ids_rejected(self):
        endpoint = LocalEndpoint.from_triples("ep", nt_parse(EP1_DATA))
        with pytest.raises(ValueError):
            Federation([endpoint, endpoint])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Federation([])

    def test_lookup(self, federation):
        assert federation.endpoint("ep1").endpoint_id == "ep1"
        with pytest.raises(KeyError):
            federation.endpoint("nope")
        assert "ep1" in federation
        assert len(federation) == 2

    def test_total_triples(self, federation):
        assert federation.total_triples() == 4


class TestRequestHandler:
    def test_serial_request_charges_full_cost(self, federation):
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx)
        handler.ask("ep1", "ASK { ?s <http://ub/advisor> ?o }")
        assert ctx.metrics.requests == 1
        assert ctx.metrics.ask_requests == 1
        assert ctx.metrics.virtual_seconds > 0

    def test_batch_overlaps_across_endpoints(self, federation):
        text = "SELECT ?s WHERE { ?s <http://ub/advisor> ?o }"
        # Serial: two full costs.
        ctx_serial = federation.make_context()
        serial = ElasticRequestHandler(federation, ctx_serial)
        serial.select("ep1", text)
        serial.select("ep2", text)
        # Batch: overlapping costs.
        ctx_batch = federation.make_context()
        batch = ElasticRequestHandler(federation, ctx_batch)
        batch.select_all(["ep1", "ep2"], text)
        assert ctx_batch.metrics.virtual_seconds < ctx_serial.metrics.virtual_seconds
        assert ctx_batch.metrics.requests == 2

    def test_batch_to_same_endpoint_serializes(self, federation):
        text = "ASK { ?s ?p ?o }"
        ctx = federation.make_context()
        handler = ElasticRequestHandler(federation, ctx)
        responses = handler.execute_batch(
            [Request("ep1", text, "ASK"), Request("ep1", text, "ASK")]
        )
        total_cost = sum(r.cost_seconds for r in responses)
        assert ctx.metrics.virtual_seconds == pytest.approx(total_cost)

    def test_pool_size_bounds_concurrency(self, federation):
        text = "ASK { ?s ?p ?o }"
        requests = [Request("ep1", text, "ASK"), Request("ep2", text, "ASK")]
        ctx_wide = federation.make_context()
        ElasticRequestHandler(federation, ctx_wide, pool_size=8).execute_batch(requests)
        ctx_narrow = federation.make_context()
        ElasticRequestHandler(federation, ctx_narrow, pool_size=1).execute_batch(requests)
        assert ctx_narrow.metrics.virtual_seconds >= ctx_wide.metrics.virtual_seconds

    def test_invalid_pool_size(self, federation):
        with pytest.raises(ValueError):
            ElasticRequestHandler(federation, federation.make_context(), pool_size=0)


class TestSourceSelection:
    ADVISOR = TriplePattern(Variable("s"), IRI("http://ub/advisor"), Variable("o"))
    ADDRESS = TriplePattern(Variable("s"), IRI("http://ub/address"), Variable("o"))

    def test_ask_text(self):
        assert ask_query_text(self.ADVISOR) == (
            "ASK WHERE { ?s <http://ub/advisor> ?o . }"
        )

    def test_relevant_sources(self, handler):
        selector = SourceSelector(handler)
        assert selector.relevant_sources(self.ADVISOR) == ("ep1", "ep2")
        assert selector.relevant_sources(self.ADDRESS) == ("ep2",)

    def test_cache_avoids_repeat_asks(self, federation):
        cache = AskCache()
        ctx1 = federation.make_context()
        selector = SourceSelector(
            ElasticRequestHandler(federation, ctx1), cache=cache
        )
        selector.relevant_sources(self.ADVISOR)
        assert ctx1.metrics.ask_requests == 2
        ctx2 = federation.make_context()
        selector2 = SourceSelector(
            ElasticRequestHandler(federation, ctx2), cache=cache
        )
        assert selector2.relevant_sources(self.ADVISOR) == ("ep1", "ep2")
        assert ctx2.metrics.ask_requests == 0
        assert ctx2.metrics.cache_hits == 2

    def test_cache_keys_canonicalize_variables(self):
        a = TriplePattern(Variable("s"), IRI("http://p"), Variable("o"))
        b = TriplePattern(Variable("x"), IRI("http://p"), Variable("y"))
        assert canonical_pattern_key(a) == canonical_pattern_key(b)
        c = TriplePattern(Variable("x"), IRI("http://p"), Variable("x"))
        assert canonical_pattern_key(a) != canonical_pattern_key(c)

    def test_select_all_skips_fully_unbound(self, federation):
        ctx = federation.make_context()
        selector = SourceSelector(ElasticRequestHandler(federation, ctx))
        spo = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        selection = selector.select_all([spo, self.ADVISOR])
        assert selection[spo] == ("ep1", "ep2")
        assert selection[self.ADVISOR] == ("ep1", "ep2")
        # only the advisor pattern needed ASKs
        assert ctx.metrics.ask_requests == 2


class TestCheckCache:
    def test_signature_and_round_trip(self):
        cache = CheckCache()
        tp1 = TriplePattern(Variable("p"), IRI("http://phd"), Variable("u"))
        tp2 = TriplePattern(Variable("u"), IRI("http://addr"), Variable("a"))
        sig = CheckCache.signature(tp1, tp2, None)
        assert cache.get("ep1", sig) is None
        cache.put("ep1", sig, True)
        assert cache.get("ep1", sig) is True
        assert cache.get("ep2", sig) is None
        assert len(cache) == 1
