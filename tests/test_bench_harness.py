"""Tests for the experiment harness and table rendering."""

import pytest

from repro.bench import (
    QueryRun,
    build_engines,
    format_runs,
    format_table,
    run_query,
    run_suite,
    runs_to_matrix,
    summarize_by_category,
)
from repro.core import LusailEngine

from .conftest import QUERY_QA, build_paper_federation


def make_run(**overrides):
    defaults = dict(
        benchmark="B", query="Q1", system="Lusail", status="OK", rows=3,
        runtime_seconds=1.234, requests=10, bytes_sent=100, bytes_received=200,
    )
    defaults.update(overrides)
    return QueryRun(**defaults)


class TestQueryRun:
    def test_runtime_display_ok(self):
        assert make_run(runtime_seconds=1.234).runtime_display == "1.23"
        assert make_run(runtime_seconds=0.001234).runtime_display == "0.0012"
        assert make_run(runtime_seconds=250.0).runtime_display == "250"

    def test_runtime_display_failure(self):
        assert make_run(status="TO").runtime_display == "TO"
        assert make_run(status="OOM").runtime_display == "OOM"


class TestBuildEngines:
    def test_all_systems(self):
        federation = build_paper_federation()
        engines = build_engines(federation)
        assert set(engines) == {"Lusail", "FedX", "HiBISCuS", "SPLENDID"}
        # index-based systems come preprocessed
        assert engines["SPLENDID"].index is not None
        assert engines["HiBISCuS"].summaries is not None

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            build_engines(build_paper_federation(), systems=("Virtuoso",))

    def test_lusail_options_forwarded(self):
        engines = build_engines(
            build_paper_federation(),
            systems=("Lusail",),
            lusail_options={"enable_sape": False},
        )
        assert engines["Lusail"].enable_sape is False


class TestRunQuery:
    def test_records_metrics(self):
        federation = build_paper_federation()
        engine = LusailEngine(federation)
        run = run_query(engine, "paper", "Qa", QUERY_QA)
        assert run.status == "OK"
        assert run.rows == 3
        assert run.requests > 0
        assert run.system == "Lusail"
        assert "execution" in run.phase_seconds

    def test_warm_run_reports_cached_execution(self):
        federation = build_paper_federation()
        engine = LusailEngine(federation)
        cold = run_query(engine, "paper", "Qa", QUERY_QA, warm=False)
        warm = run_query(engine, "paper", "Qa", QUERY_QA, warm=True)
        assert warm.requests <= cold.requests

    def test_failure_status_propagates(self):
        federation = build_paper_federation()
        engine = LusailEngine(federation)
        run = run_query(
            engine, "paper", "Qa", QUERY_QA, timeout_seconds=1e-12, warm=False
        )
        assert run.status == "TO"


class TestRunSuite:
    def test_every_system_runs_every_query(self):
        federation = build_paper_federation()
        runs = run_suite(
            federation, {"Qa": QUERY_QA}, "paper", systems=("Lusail", "FedX")
        )
        assert {(r.system, r.query) for r in runs} == {
            ("Lusail", "Qa"), ("FedX", "Qa"),
        }


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            [{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}],
            ["a", "b"],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "b" in lines[2]
        assert len(lines) == 6

    def test_matrix_pivot(self):
        runs = [
            make_run(system="Lusail", runtime_seconds=1.0),
            make_run(system="FedX", status="TO"),
        ]
        matrix = runs_to_matrix(runs, value="runtime")
        assert matrix == [{"query": "Q1", "Lusail": "1.00", "FedX": "TO"}]

    def test_matrix_requests(self):
        runs = [make_run(requests=42)]
        matrix = runs_to_matrix(runs, value="requests")
        assert matrix[0]["Lusail"] == 42

    def test_matrix_includes_benchmark_when_mixed(self):
        runs = [make_run(benchmark="A"), make_run(benchmark="B")]
        matrix = runs_to_matrix(runs)
        assert all("benchmark" in row for row in matrix)

    def test_matrix_rejects_unknown_value(self):
        with pytest.raises(ValueError):
            runs_to_matrix([make_run()], value="latency")

    def test_format_runs_smoke(self):
        text = format_runs([make_run()], "Title")
        assert "Title" in text and "Lusail" in text

    def test_summarize_by_category(self):
        runs = [
            make_run(query="S1", runtime_seconds=1.0),
            make_run(query="S2", runtime_seconds=2.0),
            make_run(query="C1", runtime_seconds=5.0),
        ]
        rows = summarize_by_category(
            runs, {"S1": "simple", "S2": "simple", "C1": "complex"}
        )
        totals = {(r["system"], r["category"]): r["total_runtime_s"] for r in rows}
        assert totals[("Lusail", "simple")] == pytest.approx(3.0)
        assert totals[("Lusail", "complex")] == pytest.approx(5.0)


class TestCli:
    def test_list_experiments(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "fig9" in output and "table2" in output

    def test_unknown_experiment(self, capsys):
        from repro.bench.__main__ import main

        assert main(["-e", "fig99"]) == 2

    def test_run_table1(self, capsys):
        from repro.bench.__main__ import main

        assert main(["-e", "table1", "--scale", "0.3"]) == 0
        output = capsys.readouterr().out
        assert "QFed" in output and "LargeRDFBench" in output
