"""Tests for the execution tracing facility (the demo view)."""

import pytest

from repro.core import LusailEngine, QueryTrace, render_trace

from .conftest import QUERY_QA, build_paper_federation


@pytest.fixture
def traced_outcome():
    engine = LusailEngine(build_paper_federation())
    return engine.execute(QUERY_QA, trace=True)


class TestQueryTrace:
    def test_record_and_iterate(self):
        trace = QueryTrace()
        trace.record("source_selection", 0.1, selection={})
        trace.record("done", 0.5, rows=3, requests=7)
        assert len(trace) == 2
        assert [e.kind for e in trace] == ["source_selection", "done"]
        assert trace.of_kind("done")[0].detail["rows"] == 3

    def test_disabled_by_default(self):
        engine = LusailEngine(build_paper_federation())
        outcome = engine.execute(QUERY_QA)
        assert outcome.trace is None

    def test_enabled_collects_pipeline_events(self, traced_outcome):
        assert traced_outcome.status == "OK"
        kinds = [e.kind for e in traced_outcome.trace]
        for expected in ("source_selection", "gjv", "decomposition",
                         "subquery_result", "join_order", "done"):
            assert expected in kinds, expected
        # narrative is ordered: selection before analysis before execution
        assert kinds.index("source_selection") < kinds.index("gjv")
        assert kinds.index("gjv") < kinds.index("decomposition")
        assert kinds.index("decomposition") < kinds.index("done")

    def test_gjv_event_names_paper_variables(self, traced_outcome):
        gjv = traced_outcome.trace.of_kind("gjv")[0]
        assert "U" in gjv.detail["variables"]
        assert "P" in gjv.detail["variables"]
        assert gjv.detail["check_queries"] > 0

    def test_decomposition_event_structure(self, traced_outcome):
        event = traced_outcome.trace.of_kind("decomposition")[0]
        subqueries = event.detail["subqueries"]
        assert len(subqueries) >= 2
        for info in subqueries:
            assert set(info) == {
                "label", "patterns", "sources", "estimated", "delayed",
                "cache_warm",
            }

    def test_subquery_results_match_decomposition(self, traced_outcome):
        decomposed = {
            info["label"]
            for info in traced_outcome.trace.of_kind("decomposition")[0]
            .detail["subqueries"]
        }
        observed = {
            e.detail["label"]
            for e in traced_outcome.trace.of_kind("subquery_result")
        }
        assert decomposed == observed

    def test_trace_survives_failure(self):
        engine = LusailEngine(build_paper_federation())
        outcome = engine.execute(QUERY_QA, trace=True, timeout_seconds=1e-12)
        assert outcome.status == "TO"
        assert outcome.trace is not None  # partial narrative retained


class TestRenderTrace:
    def test_renders_all_events(self, traced_outcome):
        text = render_trace(traced_outcome.trace)
        assert "source selection" in text
        assert "global join variables" in text
        assert "decomposition" in text
        assert "done: 3 answers" in text
        # numbered narrative
        assert text.startswith("[1] ")

    def test_unknown_event_kind_is_rendered_generically(self):
        trace = QueryTrace()
        trace.record("custom_thing", 0.0, foo=1)
        assert "custom_thing" in render_trace(trace)

    def test_no_gjv_narrative(self):
        engine = LusailEngine(build_paper_federation())
        outcome = engine.execute(
            "SELECT ?u ?a WHERE { ?u "
            "<http://swat.cse.lehigh.edu/onto/univ-bench.owl#address> ?a }",
            trace=True,
        )
        text = render_trace(outcome.trace)
        assert "no global join variables" in text
