"""Tests for the compile-once BGP planner, batch executor, and the
satellite changes that rode along (hash MINUS, CountCache, ERH context
manager, per-request compute attribution)."""

import pytest

from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import CountCache, ElasticRequestHandler, Federation, Request
from repro.rdf import IRI, Literal, Triple, TriplePattern, Variable, parse as nt_parse
from repro.sparql import Evaluator, EvaluatorStats, build_plan, parse_query
from repro.store import TripleStore

UB = "http://ub/"


def _iri(name):
    return IRI(UB + name)


@pytest.fixture
def store():
    triples = []
    # 20 students, 2 advisors, one rare department
    for i in range(20):
        student = IRI(f"http://u0/s{i}")
        triples.append(Triple(student, _iri("type"), _iri("Student")))
        triples.append(Triple(student, _iri("advisor"), IRI(f"http://u0/p{i % 2}")))
    triples.append(Triple(IRI("http://u0/s0"), _iri("memberOf"), _iri("d0")))
    return TripleStore(triples)


class TestBuildPlan:
    def test_selective_pattern_first(self, store):
        patterns = [
            TriplePattern(Variable("s"), _iri("type"), _iri("Student")),  # 20
            TriplePattern(Variable("s"), _iri("memberOf"), Variable("d")),  # 1
        ]
        plan = build_plan(store, patterns)
        assert plan.order[0].predicate == _iri("memberOf")

    def test_disconnected_patterns_deferred(self, store):
        patterns = [
            TriplePattern(Variable("x"), _iri("advisor"), Variable("y")),  # 20
            TriplePattern(Variable("s"), _iri("memberOf"), Variable("d")),  # 1
            TriplePattern(Variable("s"), _iri("type"), _iri("Student")),  # 20
        ]
        plan = build_plan(store, patterns)
        # memberOf goes first (cheapest); the s-connected type pattern must
        # come before the disconnected advisor pattern despite equal counts
        assert plan.order[0].predicate == _iri("memberOf")
        assert plan.order[1].predicate == _iri("type")

    def test_deterministic_tiebreak_on_syntactic_order(self, store):
        patterns = [
            TriplePattern(Variable("a"), _iri("advisor"), Variable("b")),
            TriplePattern(Variable("a"), _iri("type"), Variable("c")),
        ]
        first = build_plan(store, patterns)
        second = build_plan(store, patterns)
        assert first.order == second.order

    def test_plan_records_store_version(self, store):
        plan = build_plan(store, [TriplePattern(Variable("s"), _iri("type"), Variable("o"))])
        assert plan.store_version == store.version

    def test_stats_updated(self, store):
        stats = EvaluatorStats()
        build_plan(store, [TriplePattern(Variable("s"), _iri("type"), Variable("o"))], stats=stats)
        assert stats.plans_built == 1
        assert stats.plan_seconds >= 0.0


class TestPlanCache:
    QUERY = f"""
    SELECT ?s ?a WHERE {{
        ?s <{UB}type> <{UB}Student> .
        ?s <{UB}advisor> ?a .
    }}
    """

    def test_plan_built_once_then_cached(self, store):
        evaluator = Evaluator(store)
        query = parse_query(self.QUERY)
        evaluator.select(query)
        evaluator.select(query)
        evaluator.select(query)
        assert evaluator.stats.plans_built == 1
        assert evaluator.stats.plan_cache_hits == 2

    def test_store_mutation_invalidates_plan(self, store):
        evaluator = Evaluator(store)
        query = parse_query(self.QUERY)
        evaluator.select(query)
        store.add(Triple(IRI("http://u0/s99"), _iri("type"), _iri("Student")))
        evaluator.select(query)
        assert evaluator.stats.plans_built == 2

    def test_no_count_probes_on_planned_path(self, store):
        evaluator = Evaluator(store)
        before = store.count_calls
        evaluator.select(parse_query(self.QUERY))
        assert evaluator.stats.count_probes == 0
        assert store.count_calls == before

    def test_seed_path_probes_per_binding(self, store):
        evaluator = Evaluator(store, use_planner=False)
        evaluator.select(parse_query(f"""
        SELECT ?s ?a ?t WHERE {{
            ?s <{UB}type> ?t .
            ?s <{UB}advisor> ?a .
            ?a <{UB}type> ?t2 .
        }}
        """))
        # one probe per remaining pattern per intermediate binding: with 20
        # students the seed path probes far more than the 3 patterns
        assert evaluator.stats.count_probes > 20


class TestBatchExecution:
    def test_planned_equals_seed_rows(self, store):
        query = parse_query(self.__class__.QUERY)
        planned = Evaluator(store).select(query)
        seed = Evaluator(store, use_planner=False).select(query)
        assert sorted(map(tuple, planned.rows)) == sorted(map(tuple, seed.rows))

    QUERY = f"""
    SELECT ?s ?a WHERE {{
        ?s <{UB}type> <{UB}Student> .
        ?s <{UB}advisor> ?a .
    }}
    """

    def test_small_batch_size_same_answers(self, store):
        query = parse_query(self.QUERY)
        tiny = Evaluator(store, batch_size=2).select(query)
        default = Evaluator(store).select(query)
        assert sorted(map(tuple, tiny.rows)) == sorted(map(tuple, default.rows))

    def test_stats_count_batches_and_rows(self, store):
        evaluator = Evaluator(store)
        evaluator.select(parse_query(self.QUERY))
        assert evaluator.stats.batches >= 2  # one per pattern at least
        assert evaluator.stats.intermediate_rows >= 40
        assert evaluator.stats.patterns_evaluated == 2

    def test_ask_short_circuits(self, store):
        evaluator = Evaluator(store)
        assert evaluator.ask(parse_query(
            f"ASK {{ ?s <{UB}type> <{UB}Student> . ?s <{UB}advisor> ?a . }}"
        ))
        # a single batch per stage suffices for a non-empty ASK
        assert evaluator.stats.intermediate_rows <= 2 * Evaluator(store).batch_size


class TestMatchBindings:
    def test_repeated_variable_pattern(self):
        store = TripleStore([
            Triple(_iri("a"), _iri("p"), _iri("a")),
            Triple(_iri("a"), _iri("p"), _iri("b")),
        ])
        pattern = TriplePattern(Variable("x"), _iri("p"), Variable("x"))
        out = list(store.match_bindings(pattern, [{}]))
        assert out == [{Variable("x"): _iri("a")}]

    def test_grouped_probe_shares_index_walk(self):
        store = TripleStore([
            Triple(_iri("s1"), _iri("p"), _iri("o1")),
            Triple(_iri("s2"), _iri("p"), _iri("o2")),
        ])
        pattern = TriplePattern(Variable("s"), _iri("p"), Variable("o"))
        x = Variable("x")
        batch = [{x: Literal("1")}, {x: Literal("2")}]
        out = list(store.match_bindings(pattern, batch))
        # cross product: every input binding extended by every match
        assert len(out) == 4
        assert all(x in b and Variable("s") in b for b in out)

    def test_fully_bound_membership(self):
        store = TripleStore([Triple(_iri("s"), _iri("p"), _iri("o"))])
        pattern = TriplePattern(Variable("a"), _iri("p"), Variable("b"))
        hit = {Variable("a"): _iri("s"), Variable("b"): _iri("o")}
        miss = {Variable("a"): _iri("s"), Variable("b"): _iri("nope")}
        assert list(store.match_bindings(pattern, [hit, miss])) == [hit]


class TestHashMinus:
    def test_minus_removes_compatible(self):
        store = TripleStore([
            Triple(_iri("a"), _iri("p"), _iri("x")),
            Triple(_iri("b"), _iri("p"), _iri("y")),
            Triple(_iri("a"), _iri("q"), _iri("z")),
        ])
        query = parse_query(f"""
        SELECT ?s WHERE {{
            ?s <{UB}p> ?o .
            MINUS {{ ?s <{UB}q> ?z . }}
        }}
        """)
        rows = Evaluator(store).select(query).rows
        assert [tuple(r) for r in rows] == [(_iri("b"),)]

    def test_minus_disjoint_domains_keeps_all(self):
        store = TripleStore([
            Triple(_iri("a"), _iri("p"), _iri("x")),
            Triple(_iri("c"), _iri("q"), _iri("z")),
        ])
        query = parse_query(f"""
        SELECT ?s WHERE {{
            ?s <{UB}p> ?o .
            MINUS {{ ?u <{UB}q> ?z . }}
        }}
        """)
        # no shared variables -> nothing is removed (SPARQL semantics)
        assert len(Evaluator(store).select(query)) == 1


class TestCountCache:
    def test_hit_miss_counters(self):
        cache = CountCache()
        key = ("ep1", "pattern-key")
        assert cache.get(key) is None
        assert cache.misses == 1
        cache[key] = 7
        assert cache.get(key) == 7
        assert cache.hits == 1
        assert key in cache
        assert len(cache) == 1

    def test_default_value(self):
        cache = CountCache()
        assert cache.get(("ep", "k"), -1) == -1


class TestHandlerContextManager:
    DATA = f'<http://u0/s> <{UB}p> <http://u0/o> .\n'

    def test_with_block_closes_pool(self):
        federation = Federation(
            [LocalEndpoint.from_triples("ep1", nt_parse(self.DATA))],
            network=LOCAL_CLUSTER,
        )
        context = federation.make_context()
        with ElasticRequestHandler(federation, context) as handler:
            response = handler.execute(Request(
                endpoint_id="ep1",
                query_text=f"SELECT ?s WHERE {{ ?s <{UB}p> ?o . }}",
            ))
            assert len(response.value) == 1
            executor = handler._executor
        assert executor is None or executor._shutdown

    def test_response_carries_compute(self):
        federation = Federation(
            [LocalEndpoint.from_triples("ep1", nt_parse(self.DATA))],
            network=LOCAL_CLUSTER,
        )
        context = federation.make_context()
        with ElasticRequestHandler(federation, context) as handler:
            handler.execute(Request(
                endpoint_id="ep1",
                query_text=f"SELECT ?s WHERE {{ ?s <{UB}p> ?o . }}",
            ))
        snapshot = context.metrics.snapshot()
        evaluator_keys = [k for k in snapshot if k.startswith("evaluator:")]
        assert evaluator_keys, snapshot
