"""Tests for BIND, MINUS, GROUP BY, and the extended aggregate set."""

import pytest

from repro.core import LusailEngine
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import Federation
from repro.rdf import parse as nt_parse
from repro.sparql import Evaluator, parse_query, serialize_query
from repro.store import TripleStore

from .conftest import result_values

DATA = """
<http://x/a> <http://p/dept> <http://x/d1> .
<http://x/b> <http://p/dept> <http://x/d1> .
<http://x/c> <http://p/dept> <http://x/d2> .
<http://x/a> <http://p/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/b> <http://p/age> "40"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/c> <http://p/age> "20"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/a> <http://p/flag> "yes" .
"""


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator(TripleStore(nt_parse(DATA)))


class TestBind:
    def test_computed_column(self, evaluator):
        result = evaluator.select(parse_query(
            "SELECT ?s ?double WHERE { ?s <http://p/age> ?a . "
            "BIND(?a * 2 AS ?double) }"
        ))
        values = {(r[0].value, int(r[1].lexical)) for r in result.rows}
        assert ("http://x/a", 60) in values
        assert ("http://x/c", 40) in values

    def test_bind_error_leaves_unbound(self, evaluator):
        result = evaluator.select(parse_query(
            "SELECT ?s ?bad WHERE { ?s <http://p/dept> ?d . "
            "BIND(?d * 2 AS ?bad) }"
        ))
        assert all(row[1] is None for row in result.rows)

    def test_bind_feeds_filter(self, evaluator):
        result = evaluator.select(parse_query(
            "SELECT ?s WHERE { ?s <http://p/age> ?a . "
            "BIND(?a + 5 AS ?b) FILTER(?b > 40) }"
        ))
        assert {r[0].value for r in result.rows} == {"http://x/b"}

    def test_round_trip(self):
        text = "SELECT ?s ?b WHERE { ?s <http://p> ?a . BIND(STR(?a) AS ?b) . }"
        assert serialize_query(parse_query(serialize_query(parse_query(text)))) \
            == serialize_query(parse_query(text))


class TestMinus:
    def test_removes_matching_solutions(self, evaluator):
        result = evaluator.select(parse_query(
            "SELECT ?s WHERE { ?s <http://p/dept> ?d . "
            'MINUS { ?s <http://p/flag> "yes" } }'
        ))
        assert {r[0].value for r in result.rows} == {"http://x/b", "http://x/c"}

    def test_disjoint_minus_removes_nothing(self, evaluator):
        result = evaluator.select(parse_query(
            "SELECT ?s WHERE { ?s <http://p/dept> ?d . "
            "MINUS { ?x <http://p/missing> ?y } }"
        ))
        assert len(result) == 3


class TestGroupByAggregates:
    def test_count_per_group(self, evaluator):
        result = evaluator.select(parse_query(
            "SELECT ?d (COUNT(?s) AS ?n) WHERE { ?s <http://p/dept> ?d } "
            "GROUP BY ?d"
        ))
        counts = {r[0].value: int(r[1].lexical) for r in result.rows}
        assert counts == {"http://x/d1": 2, "http://x/d2": 1}

    def test_sum_avg_min_max(self, evaluator):
        result = evaluator.select(parse_query(
            "SELECT ?d (SUM(?a) AS ?s) (AVG(?a) AS ?avg) "
            "(MIN(?a) AS ?lo) (MAX(?a) AS ?hi) WHERE "
            "{ ?x <http://p/dept> ?d . ?x <http://p/age> ?a } GROUP BY ?d"
        ))
        by_dept = {r[0].value: r[1:] for r in result.rows}
        s, avg, lo, hi = by_dept["http://x/d1"]
        assert int(s.lexical) == 70
        assert float(avg.lexical) == pytest.approx(35.0)
        assert int(lo.lexical) == 30
        assert int(hi.lexical) == 40

    def test_sum_over_non_numeric_is_unbound(self, evaluator):
        result = evaluator.select(parse_query(
            "SELECT (SUM(?d) AS ?s) WHERE { ?x <http://p/dept> ?d }"
        ))
        assert result.rows == [(None,)]

    def test_count_distinct(self, evaluator):
        result = evaluator.select(parse_query(
            "SELECT (COUNT(DISTINCT ?d) AS ?n) WHERE { ?s <http://p/dept> ?d }"
        ))
        assert int(result.rows[0][0].lexical) == 2

    def test_aggregate_over_empty_solutions(self, evaluator):
        result = evaluator.select(parse_query(
            "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://p/none> ?o }"
        ))
        assert int(result.rows[0][0].lexical) == 0

    def test_ungrouped_plain_variable_rejected(self, evaluator):
        with pytest.raises(NotImplementedError):
            evaluator.select(parse_query(
                "SELECT ?s (COUNT(?d) AS ?n) WHERE { ?s <http://p/dept> ?d }"
            ))

    def test_sum_star_is_syntax_error(self):
        from repro.sparql import SparqlSyntaxError

        with pytest.raises((SparqlSyntaxError, ValueError)):
            parse_query("SELECT (SUM(*) AS ?s) WHERE { ?s ?p ?o }")


# ----------------------------------------------------------------------
# Federated versions (evaluated at the Lusail federator)
# ----------------------------------------------------------------------

EP1 = """
<http://x/a> <http://p/dept> <http://x/d1> .
<http://x/a> <http://p/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/a> <http://p/flag> "yes" .
"""
EP2 = """
<http://x/b> <http://p/dept> <http://x/d1> .
<http://x/b> <http://p/age> "40"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/c> <http://p/dept> <http://x/d2> .
<http://x/c> <http://p/age> "20"^^<http://www.w3.org/2001/XMLSchema#integer> .
"""


@pytest.fixture
def engine():
    federation = Federation(
        [
            LocalEndpoint.from_triples("ep1", nt_parse(EP1)),
            LocalEndpoint.from_triples("ep2", nt_parse(EP2)),
        ],
        network=LOCAL_CLUSTER,
    )
    return LusailEngine(federation)


class TestFederatedExtendedFeatures:
    def test_federated_group_by(self, engine):
        outcome = engine.execute(
            "SELECT ?d (COUNT(?s) AS ?n) WHERE { ?s <http://p/dept> ?d } "
            "GROUP BY ?d"
        )
        assert outcome.status == "OK", outcome.error
        counts = {r[0].value: int(r[1].lexical) for r in outcome.result.rows}
        assert counts == {"http://x/d1": 2, "http://x/d2": 1}

    def test_federated_avg(self, engine):
        outcome = engine.execute(
            "SELECT (AVG(?a) AS ?avg) WHERE { ?s <http://p/age> ?a }"
        )
        assert outcome.status == "OK", outcome.error
        assert float(outcome.result.rows[0][0].lexical) == pytest.approx(30.0)

    def test_federated_bind(self, engine):
        outcome = engine.execute(
            "SELECT ?s ?next WHERE { ?s <http://p/age> ?a . "
            "BIND(?a + 1 AS ?next) }"
        )
        assert outcome.status == "OK", outcome.error
        values = {(r[0].value, int(r[1].lexical)) for r in outcome.result.rows}
        assert ("http://x/a", 31) in values

    def test_federated_minus(self, engine):
        outcome = engine.execute(
            "SELECT ?s WHERE { ?s <http://p/dept> ?d . "
            'MINUS { ?s <http://p/flag> "yes" } }'
        )
        assert outcome.status == "OK", outcome.error
        assert {r[0] for r in result_values(outcome.result)} == {
            "http://x/b", "http://x/c",
        }

    def test_federated_minus_spans_endpoints(self, engine):
        """The MINUS side lives on ep1 only; the positive side on both."""
        outcome = engine.execute(
            "SELECT ?s ?a WHERE { ?s <http://p/age> ?a . "
            "MINUS { ?s <http://p/flag> ?f } }"
        )
        assert outcome.status == "OK", outcome.error
        names = {r[0] for r in result_values(outcome.result)}
        assert names == {"http://x/b", "http://x/c"}
