"""Fragment-aware source selection over replicated endpoints.

The acceptance scenario: a federation where two endpoints replicate the
same fragment serves a read workload with every fragment queried exactly
once per query (no duplicate ASK/SELECT traffic to both copies), while
the stream of queries is balanced across both replicas by the
load/latency score — both lanes end up utilized.
"""

from repro.core import LusailEngine
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import Federation, FragmentDescriptor, ReplicaRouter
from repro.rdf import IRI, TriplePattern, Variable
from repro.rdf import parse as nt_parse

from .conftest import EP1_TRIPLES, EP2_TRIPLES, QA_EXPECTED, QUERY_QA, result_values


def build_replicated_federation() -> Federation:
    """ep1 plus two byte-identical replicas of the paper's ep2."""
    federation = Federation(
        [
            LocalEndpoint.from_triples("ep1", nt_parse(EP1_TRIPLES)),
            LocalEndpoint.from_triples("ep2a", nt_parse(EP2_TRIPLES)),
            LocalEndpoint.from_triples("ep2b", nt_parse(EP2_TRIPLES)),
        ],
        network=LOCAL_CLUSTER,
    )
    federation.register_replica("ep2a", "ep2b", standby=False)
    return federation


class TestFragmentDescriptor:
    def test_full_replica_covers_everything(self):
        fragment = FragmentDescriptor("r", ("a", "b"))
        pattern = TriplePattern(Variable("s"), IRI("http://p"), Variable("o"))
        assert fragment.covers(pattern)

    def test_predicate_fragment_covers_only_its_predicates(self):
        fragment = FragmentDescriptor(
            "f", ("a", "b"), predicates=frozenset({IRI("http://p")})
        )
        assert fragment.covers(
            TriplePattern(Variable("s"), IRI("http://p"), Variable("o"))
        )
        assert not fragment.covers(
            TriplePattern(Variable("s"), IRI("http://q"), Variable("o"))
        )
        # variable predicate: the fragment cannot promise coverage
        assert not fragment.covers(
            TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        )


class TestReplicaRegistration:
    def test_standby_false_declares_a_routing_fragment(self):
        federation = build_replicated_federation()
        names = [fragment.name for fragment in federation.fragments]
        assert names == ["replica:ep2a"]
        assert set(federation.fragments[0].endpoints) == {"ep2a", "ep2b"}

    def test_standby_true_keeps_failover_only_semantics(self):
        federation = Federation(
            [
                LocalEndpoint.from_triples("ep1", nt_parse(EP1_TRIPLES)),
                LocalEndpoint.from_triples("ep2a", nt_parse(EP2_TRIPLES)),
                LocalEndpoint.from_triples("ep2b", nt_parse(EP2_TRIPLES)),
            ],
            network=LOCAL_CLUSTER,
        )
        federation.register_replica("ep2a", "ep2b")
        assert federation.fragments == []


class TestRoutedExecution:
    def test_zero_duplicate_fragment_queries_per_query(self):
        """Each query touches exactly one member of the replica pair."""
        engine = LusailEngine(build_replicated_federation(), result_cache=False)
        outcome = engine.execute(QUERY_QA)
        assert result_values(outcome.result) == QA_EXPECTED
        touched = set(outcome.metrics.lane_busy_seconds)
        assert "ep1" in touched
        assert len(touched & {"ep2a", "ep2b"}) == 1
        assert outcome.metrics.replica_routes > 0
        assert outcome.metrics.fragment_pruned > 0

    def test_workload_splits_across_both_replicas(self):
        """Across a repeated read workload both lanes get utilized."""
        engine = LusailEngine(build_replicated_federation(), result_cache=False)
        served = []
        for _ in range(4):
            outcome = engine.execute(QUERY_QA)
            assert result_values(outcome.result) == QA_EXPECTED
            lanes = set(outcome.metrics.lane_busy_seconds) & {"ep2a", "ep2b"}
            assert len(lanes) == 1  # still no duplicates on any run
            served.append(lanes.pop())
        assert set(served) == {"ep2a", "ep2b"}
        routed = engine.replica_router.routed
        assert routed.get("ep2a", 0) > 0 and routed.get("ep2b", 0) > 0

    def test_results_match_unreplicated_baseline(self):
        from .conftest import build_paper_federation

        baseline = LusailEngine(build_paper_federation()).execute(QUERY_QA)
        routed = LusailEngine(build_replicated_federation()).execute(QUERY_QA)
        assert result_values(routed.result) == result_values(baseline.result)


class TestRouterScoring:
    FRAGMENT = FragmentDescriptor("f", ("a", "b"))

    def test_single_candidate_short_circuits(self):
        router = ReplicaRouter()
        assert router.choose(self.FRAGMENT, ["only"], handler=None) == "only"
        assert router.routed == {"only": 1}

    def test_tie_breaks_rotate(self):
        class _FlatHandler:
            def lane_backlog(self, endpoint_id):
                return 0.0

        router = ReplicaRouter()
        handler = _FlatHandler()
        first = router.choose(self.FRAGMENT, ["a", "b"], handler)
        second = router.choose(self.FRAGMENT, ["a", "b"], handler)
        assert {first, second} == {"a", "b"}

    def test_backlog_steers_away_from_busy_lane(self):
        class _SkewedHandler:
            def lane_backlog(self, endpoint_id):
                return 5.0 if endpoint_id == "a" else 0.0

        router = ReplicaRouter()
        for _ in range(3):
            assert router.choose(
                self.FRAGMENT, ["a", "b"], _SkewedHandler()
            ) == "b"
