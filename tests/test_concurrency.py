"""Concurrency regressions for the serving-era federation stack.

The serving layer runs many ``LusailEngine.execute(use_threads=True)``
calls at once against one shared federation, which exposed a sweep of
races that single-query execution never hit: lost-update ``+=`` on
metrics counters, endpoint stats snapshot/delta windows interleaving
across queries, P² quantile marker corruption, OrderedDict corruption
in the result cache, and request-handler ``close()`` racing hedges and
late submissions.  These tests hammer each fixed structure from many
threads and assert *exact* totals — a lost update shows up as an
off-by-N, not a flake.
"""

import threading

from repro.core import LusailEngine
from repro.endpoint import LocalEndpoint
from repro.endpoint.errors import QueryRejectedError
from repro.endpoint.metrics import Metrics
from repro.federation import (
    ElasticRequestHandler,
    Federation,
    Request,
    ResultCache,
)
from repro.federation.deadline import LatencyTracker
from repro.rdf import parse as nt_parse
from repro.sparql.results import ResultSet

from .conftest import (
    EP1_TRIPLES,
    EP2_TRIPLES,
    QA_EXPECTED,
    QUERY_QA,
    UB,
    build_paper_federation,
    result_values,
)

THREADS = 8
ROUNDS = 400


def _hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on N threads through a start barrier."""
    barrier = threading.Barrier(threads)
    errors = []

    def wrapped(index):
        barrier.wait()
        try:
            worker(index)
        except BaseException as exc:  # surfaced in the main thread
            errors.append(exc)

    pool = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


class TestMetricsCounters:
    def test_increment_is_exact_under_threads(self):
        metrics = Metrics()

        def worker(_index):
            for _ in range(ROUNDS):
                metrics.increment("requests")
                metrics.increment("bytes_received", 3)
                metrics.increment("virtual_seconds", 0.5)

        _hammer(worker)
        assert metrics.requests == THREADS * ROUNDS
        assert metrics.bytes_received == THREADS * ROUNDS * 3
        assert metrics.virtual_seconds == THREADS * ROUNDS * 0.5

    def test_concurrent_merge_is_exact(self):
        total = Metrics()

        def worker(_index):
            for _ in range(50):
                part = Metrics()
                part.requests = 2
                part.retries = 1
                part.phase_seconds["execution"] = 0.25
                part.lane_busy_seconds["ep1"] = 1.0
                total.merge(part)

        _hammer(worker)
        assert total.requests == THREADS * 50 * 2
        assert total.retries == THREADS * 50
        assert total.phase_seconds["execution"] == THREADS * 50 * 0.25
        assert total.lane_busy_seconds["ep1"] == THREADS * 50 * 1.0

    def test_merge_takes_max_of_high_water_marks(self):
        total = Metrics()
        total.inflight_high_water = 3
        part = Metrics()
        part.inflight_high_water = 7
        part.peak_intermediate_rows = 11
        total.merge(part)
        assert total.inflight_high_water == 7
        assert total.peak_intermediate_rows == 11


class TestEndpointSerialization:
    def test_compute_attribution_is_exact_across_threads(self):
        """Each response's compute delta covers exactly its own query.

        Before the endpoint-level lock, two concurrent queries would
        interleave their stats snapshot/delta windows and one query
        would be billed for the other's work — the per-response deltas
        then sum to more (or less) than the evaluator's own totals.
        """
        endpoint = LocalEndpoint.from_triples("ep1", nt_parse(EP1_TRIPLES))
        query = f"SELECT ?s WHERE {{ ?s <{UB}advisor> ?o }}"
        deltas = []
        lock = threading.Lock()

        def worker(_index):
            for _ in range(40):
                response = endpoint.execute(query)
                assert len(response.value) == 2
                with lock:
                    deltas.append(response.compute)

        _hammer(worker)
        total = endpoint._evaluator.stats
        billed = sum(d.get("patterns_evaluated", 0) for d in deltas)
        assert billed == total.patterns_evaluated
        billed_batches = sum(d.get("batches", 0) for d in deltas)
        assert billed_batches == total.batches

    def test_shared_engine_concurrent_queries_agree(self):
        """One engine, one federation, 8 threads: every answer exact."""
        federation = build_paper_federation()
        engine = LusailEngine(
            federation, use_threads=True, reset_request_windows=False
        )

        def worker(_index):
            for _ in range(3):
                result = engine.execute(QUERY_QA)
                assert result.status == "OK"
                assert result_values(result.result) == QA_EXPECTED

        _hammer(worker)


class TestLatencyTracker:
    def test_concurrent_observations_all_counted(self):
        tracker = LatencyTracker()

        def worker(index):
            for step in range(ROUNDS):
                tracker.observe("ep1", 0.01 * (index + 1) + 1e-5 * step)

        _hammer(worker)
        assert tracker.count("ep1") == THREADS * ROUNDS
        p95 = tracker.quantile("ep1", 0.95)
        assert p95 is not None and 0.0 < p95 < 1.0


class TestRequestHandlerClose:
    ASK = "ASK { ?s ?p ?o }"

    def _handler(self, **kwargs) -> ElasticRequestHandler:
        federation = build_paper_federation()
        context = federation.make_context()
        return ElasticRequestHandler(federation, context, **kwargs)

    def test_close_is_idempotent(self):
        handler = self._handler()
        handler.submit(Request("ep1", self.ASK, "ASK"))
        handler.submit(Request("ep2", self.ASK, "ASK"))
        handler.close()
        assert handler.cancelled == 2
        assert handler.context.metrics.requests_cancelled == 2
        handler.close()  # second close finds nothing to drain
        assert handler.cancelled == 2
        assert handler.context.metrics.requests_cancelled == 2

    def test_submit_after_close_sheds_without_touching_the_pool(self):
        handler = self._handler(use_threads=True)
        future = handler.submit(Request("ep1", self.ASK, "ASK"))
        assert future.result().value is True
        handler.close()
        late = handler.submit(Request("ep1", self.ASK, "ASK"))
        assert late.done()
        try:
            late.result()
        except QueryRejectedError:
            pass
        else:
            raise AssertionError("expected QueryRejectedError after close")
        assert handler.context.metrics.sheds == 1

    def test_concurrent_close_and_submit_never_crash(self):
        """close() racing submits: every submission either executes or
        sheds cleanly; cancelled/shed accounting stays consistent."""
        handler = self._handler(use_threads=True)
        submitted = []
        lock = threading.Lock()

        def submitter(index):
            if index == 0:
                handler.close()
                return
            for _ in range(20):
                future = handler.submit(Request("ep1", self.ASK, "ASK"))
                with lock:
                    submitted.append(future)

        _hammer(submitter)
        handler.close()
        for future in submitted:
            assert future.done() or future._thread_future is not None

    def test_close_with_hedging_configured_is_safe(self):
        """Draining a hedged handler never launches new hedge requests."""
        federation = build_paper_federation()
        federation.register_replica("ep1", "ep2")
        context = federation.make_context()
        handler = ElasticRequestHandler(
            federation, context, hedge=True, hedge_threshold_seconds=0.0
        )
        for _ in range(4):
            handler.submit(Request("ep1", self.ASK, "ASK"))
        hedges_before = context.metrics.hedges_launched
        handler.close()
        # the drain resolved everything without racing new hedges in
        assert handler.cancelled == 4
        assert context.metrics.hedges_launched == hedges_before
        handler.close()
        assert handler.cancelled == 4


class TestResultCacheConcurrency:
    def test_concurrent_put_get_exact_counters(self):
        from repro.rdf import IRI, Variable

        cache = ResultCache()
        rs = ResultSet((Variable("s"),), [(IRI("http://x/a"),)])

        def worker(index):
            for step in range(100):
                key = f"k{index}-{step}"
                assert cache.get("ep", 0, key) is None
                cache.put("ep", 0, key, rs)
                assert cache.get("ep", 0, key) is not None

        _hammer(worker)
        assert cache.hits == THREADS * 100
        assert cache.misses == THREADS * 100


class TestReplicaAwareCacheIdentity:
    def test_active_replicas_share_one_cache_scope(self):
        triples = list(nt_parse(EP1_TRIPLES))
        federation = Federation([
            LocalEndpoint.from_triples("ep1", triples),
            LocalEndpoint.from_triples("ep1b", triples),
        ])
        federation.register_replica("ep1", "ep1b", standby=False)
        scope_a, version_a = federation.cache_identity("ep1")
        scope_b, version_b = federation.cache_identity("ep1b")
        assert scope_a == scope_b
        assert version_a == version_b

    def test_standby_pair_shares_scope_and_any_mutation_invalidates(self):
        triples = list(nt_parse(EP1_TRIPLES))
        federation = Federation([
            LocalEndpoint.from_triples("ep1", triples),
            LocalEndpoint.from_triples("ep1b", triples),
        ])
        federation.register_replica("ep1", "ep1b", standby=True)
        scope_a, version_before = federation.cache_identity("ep1")
        scope_b, _ = federation.cache_identity("ep1b")
        assert scope_a == scope_b
        # mutating the *standby* copy must invalidate the shared entries
        from repro.rdf import IRI, Triple

        federation.endpoint("ep1b").store.add(Triple(
            IRI("http://x/s"), IRI("http://x/p"), IRI("http://x/o")
        ))
        _, version_after = federation.cache_identity("ep1")
        assert version_after != version_before

    def test_unreplicated_endpoint_keeps_private_identity(self):
        federation = build_paper_federation()
        scope, version = federation.cache_identity("ep1")
        assert scope == "ep1"
        assert version == federation.endpoint_version("ep1")

    def test_replica_routing_does_not_defeat_the_result_cache(self):
        """Two runs of one query hit the warm cache even when the
        replica router sends the second run's subqueries to the other
        copy — the cache key is the fragment, not the answering node."""
        ep1 = list(nt_parse(EP1_TRIPLES))
        ep2 = list(nt_parse(EP2_TRIPLES))
        federation = Federation([
            LocalEndpoint.from_triples("ep1", ep1),
            LocalEndpoint.from_triples("ep1b", ep1),
            LocalEndpoint.from_triples("ep2", ep2),
            LocalEndpoint.from_triples("ep2b", ep2),
        ])
        federation.register_replica("ep1", "ep1b", standby=False)
        federation.register_replica("ep2", "ep2b", standby=False)
        engine = LusailEngine(federation)

        first = engine.execute(QUERY_QA)
        assert first.status == "OK"
        assert result_values(first.result) == QA_EXPECTED
        # force the router's rotation so run two picks the other copies
        for _ in range(16):
            second = engine.execute(QUERY_QA)
            assert second.status == "OK"
            assert result_values(second.result) == QA_EXPECTED
            assert second.metrics.result_cache_hits > 0, (
                "replica rotation defeated the fragment-scoped cache"
            )
