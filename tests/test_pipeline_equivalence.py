"""Equivalence guarantees for the pipelined Elastic Request Handler.

Three independent axes must not change query answers:

- ``pipeline=True`` (futures-based scheduling across the analysis and
  SAPE phases) vs ``pipeline=False`` (the seed's per-batch barriers);
- ``use_threads=True`` (real ThreadPoolExecutor) vs the single-threaded
  simulator — these must agree on *accounting* too, bit for bit;
- randomized adversarial federations (Hypothesis), where values collide
  across endpoints and the independent-wave grouping in SAPE must not
  reorder binding refinement observably.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.federation_bench import (
    DIRECTORY_QUERY,
    build_directory_federation,
)
from repro.core import LusailEngine
from repro.datasets.lubm import LUBM_QUERIES, LubmGenerator
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import Federation
from repro.rdf import IRI, Triple

LUBM_QUERY_NAMES = sorted(LUBM_QUERIES)

_GENERATOR = LubmGenerator(universities=2)


def _rows(outcome):
    assert outcome.status == "OK", outcome.error
    return sorted(
        tuple("" if cell is None else cell.n3() for cell in row)
        for row in outcome.result.rows
    )


def _run(engine_kwargs, build_federation, query_text):
    engine = LusailEngine(build_federation(), **engine_kwargs)
    outcome = engine.execute(query_text)
    return _rows(outcome), outcome.metrics


def _lubm_federation():
    return _GENERATOR.build_federation(network=LOCAL_CLUSTER)


class TestThreadedEquivalence:
    """use_threads=True must be bit-identical to the simulator."""

    @pytest.mark.parametrize("name", LUBM_QUERY_NAMES)
    def test_lubm_threaded_matches_simulated(self, name):
        query = LUBM_QUERIES[name]
        sim_rows, sim = _run(
            {"use_threads": False}, _lubm_federation, query
        )
        thr_rows, thr = _run(
            {"use_threads": True}, _lubm_federation, query
        )
        assert thr_rows == sim_rows
        assert thr.requests == sim.requests
        assert thr.virtual_seconds == pytest.approx(sim.virtual_seconds)
        assert thr.inflight_high_water == sim.inflight_high_water
        assert thr.scheduler_waves == sim.scheduler_waves

    def test_directory_threaded_matches_simulated(self):
        kwargs = {"values_block_size": 2, "delay_threshold": "mu",
                  "pool_size": 32}
        build = lambda: build_directory_federation(universities=8)
        sim_rows, sim = _run(
            dict(kwargs, use_threads=False), build, DIRECTORY_QUERY
        )
        thr_rows, thr = _run(
            dict(kwargs, use_threads=True), build, DIRECTORY_QUERY
        )
        assert thr_rows == sim_rows
        assert thr.requests == sim.requests
        assert thr.virtual_seconds == pytest.approx(sim.virtual_seconds)


class TestPipelineModeEquivalence:
    """pipeline=True vs pipeline=False: same answers, never more work."""

    @pytest.mark.parametrize("name", LUBM_QUERY_NAMES)
    def test_lubm_pipeline_matches_barrier(self, name):
        query = LUBM_QUERIES[name]
        barrier_rows, barrier = _run(
            {"pipeline": False}, _lubm_federation, query
        )
        pipelined_rows, pipelined = _run(
            {"pipeline": True}, _lubm_federation, query
        )
        assert pipelined_rows == barrier_rows
        assert pipelined.requests <= barrier.requests
        # uniform lane load: pipelining must at least not regress
        assert pipelined.virtual_seconds <= barrier.virtual_seconds * 1.02

    def test_directory_pipeline_matches_barrier_and_overlaps(self):
        kwargs = {"values_block_size": 2, "delay_threshold": "mu",
                  "pool_size": 32}
        build = lambda: build_directory_federation(universities=8)
        barrier_rows, barrier = _run(
            dict(kwargs, pipeline=False), build, DIRECTORY_QUERY
        )
        pipelined_rows, pipelined = _run(
            dict(kwargs, pipeline=True), build, DIRECTORY_QUERY
        )
        assert pipelined_rows == barrier_rows
        assert pipelined.requests <= barrier.requests
        # two delayed subqueries on disjoint registries overlap
        assert pipelined.virtual_seconds < barrier.virtual_seconds
        assert pipelined.inflight_high_water > barrier.inflight_high_water
        assert pipelined.scheduler_waves < barrier.scheduler_waves


# ----------------------------------------------------------------------
# Hypothesis: randomized federations, pipelined vs barrier
# ----------------------------------------------------------------------

_ENTITIES = [IRI(f"http://x/e{i}") for i in range(6)]
_PREDICATES = [IRI(f"http://x/p{i}") for i in range(3)]

_triples = st.builds(
    Triple,
    st.sampled_from(_ENTITIES),
    st.sampled_from(_PREDICATES),
    st.sampled_from(_ENTITIES),
)

_federation_data = st.lists(
    st.lists(_triples, min_size=1, max_size=12), min_size=2, max_size=3
)

_chain_predicates = st.lists(
    st.sampled_from(_PREDICATES), min_size=1, max_size=3
)


def _chain_query(predicates) -> str:
    patterns = []
    for index, predicate in enumerate(predicates):
        patterns.append(f"?v{index} {predicate.n3()} ?v{index + 1} .")
    variables = " ".join(f"?v{i}" for i in range(len(predicates) + 1))
    return f"SELECT {variables} WHERE {{ {' '.join(patterns)} }}"


def _star_query(predicates) -> str:
    patterns = []
    for index, predicate in enumerate(predicates):
        patterns.append(f"?hub {predicate.n3()} ?v{index} .")
    variables = "?hub " + " ".join(f"?v{i}" for i in range(len(predicates)))
    return f"SELECT {variables} WHERE {{ {' '.join(patterns)} }}"


def _answer(endpoint_data, query_text, **engine_kwargs):
    endpoints = [
        LocalEndpoint.from_triples(f"ep{i}", triples)
        for i, triples in enumerate(endpoint_data)
    ]
    federation = Federation(endpoints, network=LOCAL_CLUSTER)
    engine = LusailEngine(federation, strict_checks=True, **engine_kwargs)
    outcome = engine.execute(query_text)
    assert outcome.status == "OK", outcome.error
    return {tuple(row) for row in outcome.result.rows}


@settings(max_examples=40, deadline=None)
@given(_federation_data, _chain_predicates)
def test_pipelined_matches_barrier_chain(endpoint_data, predicates):
    query_text = _chain_query(predicates)
    barrier = _answer(endpoint_data, query_text, pipeline=False)
    pipelined = _answer(endpoint_data, query_text, pipeline=True)
    assert pipelined == barrier


@settings(max_examples=30, deadline=None)
@given(_federation_data, _chain_predicates)
def test_pipelined_matches_barrier_star(endpoint_data, predicates):
    query_text = _star_query(predicates)
    barrier = _answer(endpoint_data, query_text, pipeline=False)
    pipelined = _answer(endpoint_data, query_text, pipeline=True)
    assert pipelined == barrier


@settings(max_examples=20, deadline=None)
@given(_federation_data, _chain_predicates, st.sampled_from([1, 2, 4]))
def test_threaded_pipelined_matches_simulated_chain(
    endpoint_data, predicates, pool_size
):
    query_text = _chain_query(predicates)
    simulated = _answer(
        endpoint_data, query_text, use_threads=False, pool_size=pool_size
    )
    threaded = _answer(
        endpoint_data, query_text, use_threads=True, pool_size=pool_size
    )
    assert threaded == simulated
